// Multithreaded stress tests for the serving stack, written to give TSan (and
// the annotated lock discipline) real interleavings to chew on:
//
//   - ShardManager under concurrent Get / SetTenantLimits / ReviveShard /
//     Stats churn from many tenant threads, with admission limits tight
//     enough that shedding and tenant-limit rejections actually happen.
//   - DecodeScheduler with a one-window cache under concurrent Get, so
//     eviction and the single-flight table churn constantly.
//
// Every successful Get is compared byte-for-byte against a single-threaded
// reference decode — concurrency must never change bytes. The suites run
// under the default gate for functional coverage and under the TSan lane
// (scripts/check.sh CHECK_SANITIZE=thread) for race coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "data/field_generators.h"
#include "serve/decode_scheduler.h"
#include "serve/shard_manager.h"

namespace glsc::serve {
namespace {

// [1, 40, 32, 32] with window 16: records at t0 = 0, 16 and a padded 8-frame
// tail at t0 = 32 (the same geometry the other serve fixtures use).
core::DatasetArchive EncodeSzArchive(const Tensor& field) {
  auto codec = api::Compressor::Create("sz");
  api::SessionOptions options;
  options.bound = {api::ErrorBoundMode::kRelative, 0.01};
  api::EncodeSession session(codec.get(), field.dim(0), field.dim(2),
                             field.dim(3), options);
  session.Push(field);
  return session.Finish();
}

Tensor MakeField(std::uint64_t seed) {
  data::FieldSpec spec;
  spec.variables = 1;
  spec.frames = 40;
  spec.height = 32;
  spec.width = 32;
  spec.seed = seed;
  return data::GenerateClimate(spec);
}

bool SameBytes(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// Query ranges covering single records, record pairs, padded-tail overlap,
// and the full stream; id doubles as the thread-local pick index.
const std::vector<std::pair<std::int64_t, std::int64_t>>& QueryRanges() {
  static const std::vector<std::pair<std::int64_t, std::int64_t>> kRanges = {
      {0, 4}, {12, 20}, {16, 32}, {30, 40}, {0, 40}, {18, 22}};
  return kRanges;
}

TEST(ConcurrencyStress, ShardManagerChurn) {
  const Tensor field = MakeField(901);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto bytes = archive.Serialize();
  const auto reader = core::ArchiveReader::FromBytes(bytes);
  auto codec = api::Compressor::Create("sz");

  // Single-threaded reference decode for every query range.
  std::map<std::pair<std::int64_t, std::int64_t>, Tensor> expected;
  {
    const auto ref_reader = core::ArchiveReader::FromBytes(bytes);
    auto ref_codec = api::Compressor::Create("sz");
    DecodeScheduler reference(&ref_reader, ref_codec.get());
    for (const auto& range : QueryRanges()) {
      expected.emplace(range, reference.Get(0, range.first, range.second));
    }
  }

  ShardSpec spec;
  spec.reader = &reader;
  spec.codec = codec.get();
  spec.schedule.workers = 2;
  spec.schedule.cache_windows = 2;  // small enough to evict under churn
  ManagerOptions options;
  options.queue_capacity = 8;  // small enough to shed under churn
  options.worker_threads = 2;
  options.default_limits.max_in_flight = 4;
  ShardManager manager({spec}, options);

  constexpr int kTenantThreads = 4;
  constexpr int kIterations = 40;
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> rejected{0};
  std::atomic<bool> done{0};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> threads;
  threads.reserve(kTenantThreads + 3);
  for (int tid = 0; tid < kTenantThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const auto& ranges = QueryRanges();
      for (int i = 0; i < kIterations; ++i) {
        GetRequest request;
        request.variable = 0;
        const auto& range = ranges[(tid + i) % ranges.size()];
        request.t_begin = range.first;
        request.t_end = range.second;
        request.tenant = "tenant" + std::to_string(tid % 2);
        try {
          const Tensor got = manager.Get(request);
          if (!SameBytes(got, expected.at(range))) mismatches.fetch_add(1);
          ok.fetch_add(1);
        } catch (const StatusError&) {
          // Shed / tenant-limited under churn — expected some of the time.
          rejected.fetch_add(1);
        }
      }
    });
  }
  // Admission-table churn: rewrite both tenants' limits continuously,
  // flipping between tight and unlimited.
  threads.emplace_back([&] {
    for (int i = 0; !done.load(); i = (i + 1) % 5) {
      TenantLimits limits;
      limits.max_in_flight = (i % 2 == 0) ? 2 : -1;
      limits.decoded_byte_budget = (i == 3) ? (64ll << 20) : -1;
      manager.SetTenantLimits("tenant0", limits);
      manager.SetTenantLimits("tenant1", limits);
      std::this_thread::yield();
    }
  });
  // Quarantine-state churn: revive (a no-op while healthy) and poll.
  threads.emplace_back([&] {
    while (!done.load()) {
      manager.ReviveShard(0);
      (void)manager.quarantined(0);
      std::this_thread::yield();
    }
  });
  // Stats reader: aggregates tenant tables and scheduler counters.
  threads.emplace_back([&] {
    while (!done.load()) {
      const ServeStats stats = manager.Stats();
      EXPECT_GE(stats.admitted, stats.completed + stats.failed);
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kTenantThreads; ++t) threads[t].join();
  done.store(true);
  for (std::size_t t = kTenantThreads; t < threads.size(); ++t) {
    threads[t].join();
  }

  EXPECT_EQ(mismatches.load(), 0);
  // With limits flipping to "tight" mid-run some requests may reject, but the
  // service must keep making progress throughout.
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(ok.load() + rejected.load(), kTenantThreads * kIterations);

  const ServeStats stats = manager.Stats();
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_FALSE(stats.shard_quarantined.at(0));
}

TEST(ConcurrencyStress, SchedulerTinyCacheChurn) {
  const Tensor field = MakeField(902);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto bytes = archive.Serialize();

  // Reference decode, single-threaded.
  std::map<std::pair<std::int64_t, std::int64_t>, Tensor> expected;
  {
    const auto ref_reader = core::ArchiveReader::FromBytes(bytes);
    auto ref_codec = api::Compressor::Create("sz");
    DecodeScheduler reference(&ref_reader, ref_codec.get());
    for (const auto& range : QueryRanges()) {
      expected.emplace(range, reference.Get(0, range.first, range.second));
    }
  }

  const auto reader = core::ArchiveReader::FromBytes(bytes);
  auto codec = api::Compressor::Create("sz");
  ScheduleOptions options;
  options.workers = 2;
  options.cache_windows = 1;  // every multi-record query evicts
  options.max_batch = 2;
  DecodeScheduler scheduler(&reader, codec.get(), options);

  constexpr int kThreads = 4;
  constexpr int kIterations = 30;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const auto& ranges = QueryRanges();
      for (int i = 0; i < kIterations; ++i) {
        const auto& range = ranges[(tid * 3 + i) % ranges.size()];
        const Tensor got = scheduler.Get(0, range.first, range.second);
        if (!SameBytes(got, expected.at(range))) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  // The one-window cache forces constant re-decodes: strictly more record
  // decodes than the 3 records the archive holds proves eviction churned.
  EXPECT_GT(scheduler.decoded_records(), 3);
}

}  // namespace
}  // namespace glsc::serve
