// Byte-identity of the batched decode stack against the serial workspace
// path, at every dispatch level the tentpole touches:
//
//   Conv2d::ForwardBatched        — frame-merged im2col GEMM vs per-frame
//   MultiHeadSelfAttention        — pooled-scratch forward vs plain workspace
//   SpaceTimeUNet::Forward(B)     — one pass over B stacked windows vs B
//                                   rank-4 passes
//   SampleConditionalBatch        — batched DDIM ladder vs per-window sampling
//   VaeHyperprior::DecodeLatent-  — merged decoder convolutions
//   GlscCompressor::DecompressB.  — the full pipeline, B ∈ {1, 2, 5}
//
// "Identical" here always means bitwise: batching is a dispatch choice, never
// a quality choice. Untrained weights are fine — the pipeline is
// deterministic, so equality is meaningful without a training run.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "compress/vae.h"
#include "core/glsc_compressor.h"
#include "core/registry.h"
#include "data/field_generators.h"
#include "diffusion/noise_schedule.h"
#include "diffusion/sampler.h"
#include "diffusion/spacetime_unet.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace glsc {
namespace {

using tensor::Workspace;

void ExpectBytesEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)))
      << "tensors differ bitwise";
}

TEST(BatchedConv, ForwardBatchedMatchesForward) {
  Rng rng(21);
  // Odd geometry on purpose: stride 2 with padding exercises the chunked
  // frame-merge boundaries.
  for (const std::int64_t stride : {1, 2}) {
    nn::Conv2d conv(3, 5, 3, stride, 1, rng);
    for (const std::int64_t frames : {1, 2, 7}) {
      Tensor x = Tensor::Randn({frames, 3, 12, 12}, rng);
      Workspace ws;
      const Tensor ref = conv.Forward(x, &ws);
      const Tensor batched = conv.ForwardBatched(x, &ws);
      ExpectBytesEqual(ref, batched);
      // And without a workspace (allocating path).
      const Tensor batched_alloc = conv.ForwardBatched(x, nullptr);
      ExpectBytesEqual(ref, batched_alloc);
    }
  }
}

TEST(BatchedAttention, ForwardBatchedMatchesForward) {
  Rng rng(23);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  for (const std::int64_t batch : {1, 3, 6}) {
    Tensor x = Tensor::Randn({batch, 5, 8}, rng);
    Workspace ws;
    const Tensor ref = attn.Forward(x, &ws);
    const Tensor batched = attn.ForwardBatched(x, &ws);
    ExpectBytesEqual(ref, batched);
  }
}

TEST(BatchedUNet, StackedWindowsMatchSerialPerWindow) {
  diffusion::UNetConfig config;
  config.latent_channels = 4;
  config.model_channels = 8;
  config.heads = 2;
  config.seed = 5;
  diffusion::SpaceTimeUNet unet(config);

  const std::int64_t n = 6, c = 4, h = 8, w = 8;
  Rng rng(31);
  for (const std::int64_t batch : {1, 2, 5}) {
    Tensor stacked = Tensor::Randn({batch * n, c, h, w}, rng);
    Workspace ws;
    const Tensor out = unet.Forward(stacked, /*t=*/17, &ws, batch);
    ASSERT_EQ(out.shape(), stacked.shape());
    for (std::int64_t b = 0; b < batch; ++b) {
      // Serial reference: the rank-4 workspace forward on this window alone.
      Tensor window = Tensor::Empty({n, c, h, w});
      std::memcpy(window.data(), stacked.data() + b * n * c * h * w,
                  static_cast<std::size_t>(n * c * h * w) * sizeof(float));
      Workspace serial_ws;
      const Tensor ref = unet.Forward(window, /*t=*/17, &serial_ws);
      ASSERT_EQ(0, std::memcmp(ref.data(), out.data() + b * n * c * h * w,
                               static_cast<std::size_t>(n * c * h * w) *
                                   sizeof(float)))
          << "batch " << batch << ", window " << b;
    }
  }
}

TEST(BatchedSampler, MatchesSerialPerWindow) {
  diffusion::UNetConfig config;
  config.latent_channels = 4;
  config.model_channels = 8;
  config.heads = 2;
  config.seed = 7;
  diffusion::SpaceTimeUNet unet(config);
  diffusion::NoiseSchedule schedule(diffusion::ScheduleKind::kLinear, 50);
  diffusion::SamplerConfig sampler;
  sampler.steps = 4;

  const std::vector<std::int64_t> key_idx{0, 3, 6, 7};
  const std::int64_t frames = 8;
  const std::int64_t k = static_cast<std::int64_t>(key_idx.size());
  const std::int64_t g = frames - k;
  const std::int64_t c = 4, h = 6, w = 6;

  Rng data_rng(41);
  for (const std::int64_t batch : {1, 2, 5}) {
    Tensor keys = Tensor::Randn({batch * k, c, h, w}, data_rng);
    std::vector<Rng> rng_storage;
    rng_storage.reserve(static_cast<std::size_t>(batch));
    std::vector<Rng*> rngs;
    for (std::int64_t b = 0; b < batch; ++b) {
      rng_storage.emplace_back(100 + static_cast<std::uint64_t>(b));
    }
    for (auto& r : rng_storage) rngs.push_back(&r);

    Workspace ws;
    const Tensor out = diffusion::SampleConditionalBatch(
        &unet, schedule, sampler, keys, key_idx, frames, rngs, &ws);
    ASSERT_EQ(out.shape(), (Shape{batch * g, c, h, w}));

    for (std::int64_t b = 0; b < batch; ++b) {
      Tensor window_keys = Tensor::Empty({k, c, h, w});
      std::memcpy(window_keys.data(), keys.data() + b * k * c * h * w,
                  static_cast<std::size_t>(k * c * h * w) * sizeof(float));
      Rng serial_rng(100 + static_cast<std::uint64_t>(b));
      Workspace serial_ws;
      const Tensor ref = diffusion::SampleConditional(
          &unet, schedule, sampler, window_keys, key_idx, frames, serial_rng,
          &serial_ws);
      ASSERT_EQ(0, std::memcmp(ref.data(), out.data() + b * g * c * h * w,
                               static_cast<std::size_t>(g * c * h * w) *
                                   sizeof(float)))
          << "batch " << batch << ", window " << b;
    }
  }
}

TEST(BatchedVae, DecodeLatentBatchedMatchesSerial) {
  compress::VaeConfig config;
  config.latent_channels = 4;
  config.hidden_channels = 6;
  config.hyper_channels = 2;
  config.seed = 3;
  compress::VaeHyperprior vae(config);

  Rng rng(51);
  for (const std::int64_t frames : {1, 4, 10}) {
    Tensor y = Tensor::Randn({frames, 4, 4, 4}, rng);
    Workspace ws;
    const Tensor ref = vae.DecodeLatent(y, &ws);
    const Tensor batched = vae.DecodeLatentBatched(y, &ws);
    ExpectBytesEqual(ref, batched);
  }
}

// ---------------------------------------------------------------------------
// Full pipeline: DecompressBatch vs Decompress, window by window.
// ---------------------------------------------------------------------------

core::GlscConfig SmallGlscConfig() {
  core::GlscConfig config;
  config.vae.latent_channels = 4;
  config.vae.hidden_channels = 6;
  config.vae.hyper_channels = 2;
  config.vae.seed = 3;
  config.unet.latent_channels = 4;
  config.unet.model_channels = 8;
  config.unet.heads = 2;
  config.unet.seed = 5;
  config.schedule_steps = 40;
  config.window = 8;
  config.interval = 3;
  config.sample_steps = 3;
  return config;
}

TEST(BatchedGlsc, DecompressBatchMatchesSerialDecompress) {
  core::GlscCompressor glsc(SmallGlscConfig());

  data::FieldSpec spec;
  spec.frames = 40;  // five 8-frame windows
  spec.height = 16;
  spec.width = 16;
  spec.seed = 99;
  const Tensor field = data::GenerateClimate(spec);  // [1, 40, 16, 16]

  // tau > 0 requires a fitted correction basis; 2 windows is plenty for an
  // identity test (the basis just has to exist and be used on both paths).
  data::SequenceDataset dataset(field.Clone());
  core::FitPcaFromResiduals(&glsc, dataset, /*fit_windows=*/2, /*crop=*/16);

  std::vector<core::CompressedWindow> compressed;
  for (std::int64_t w = 0; w < 5; ++w) {
    Tensor window = Tensor::Empty({8, 16, 16});
    std::memcpy(window.data(), field.data() + w * 8 * 16 * 16,
                static_cast<std::size_t>(8 * 16 * 16) * sizeof(float));
    // tau > 0 so some windows carry PCA corrections — the batch path must
    // apply them per window exactly like the serial path.
    compressed.push_back(glsc.Compress(window, /*tau=*/0.5));
  }

  std::vector<Tensor> refs;
  for (const auto& cw : compressed) refs.push_back(glsc.Decompress(cw));

  for (const std::size_t batch : {std::size_t{1}, std::size_t{2},
                                  std::size_t{5}}) {
    std::vector<const core::CompressedWindow*> views;
    for (std::size_t i = 0; i < batch; ++i) views.push_back(&compressed[i]);
    Workspace ws;
    const std::vector<Tensor> got = glsc.DecompressBatch(views, 0, &ws);
    ASSERT_EQ(got.size(), batch);
    for (std::size_t i = 0; i < batch; ++i) {
      EXPECT_FALSE(got[i].borrowed());  // arena memory must not escape
      ExpectBytesEqual(refs[i], got[i]);
    }
    // Null workspace (local arena) must give the same bytes.
    const std::vector<Tensor> local = glsc.DecompressBatch(views);
    ASSERT_EQ(local.size(), batch);
    for (std::size_t i = 0; i < batch; ++i) {
      ExpectBytesEqual(refs[i], local[i]);
    }
  }
}

}  // namespace
}  // namespace glsc
