// Self-test for the project linter (tools/glsc_lint.cc), driven over the
// fixture trees in tools/lint_fixtures/: a checker that silently stops
// finding anything is worse than no checker. Also asserts the REAL repo tree
// is lint-clean, so `ctest` alone catches a violation even when nobody runs
// scripts/check.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "glsc_lint.h"

namespace glsc {
namespace {

using lint::Result;
using lint::RunLint;
using lint::StripCommentsAndStrings;

std::string FixtureRoot(const std::string& name) {
  return std::string(GLSC_REPO_ROOT) + "/tools/lint_fixtures/" + name;
}

int CountRule(const Result& result, const std::string& rule,
              const std::string& file) {
  return static_cast<int>(std::count_if(
      result.findings.begin(), result.findings.end(), [&](const auto& f) {
        return f.rule == rule && (file.empty() || f.file == file);
      }));
}

TEST(GlscLintTest, BadFixtureTriggersEveryRule) {
  const Result result = RunLint(FixtureRoot("bad"));
  EXPECT_TRUE(result.errors.empty()) << result.errors.front();

  // raw_sync.cc: std::mutex decl + std::lock_guard<std::mutex> (two tokens).
  EXPECT_EQ(CountRule(result, "raw-sync", "src/raw_sync.cc"), 3);
  // leaky.cc: one naked new + one naked delete; the `operator new`,
  // `operator delete` and `= delete` occurrences must NOT be flagged.
  EXPECT_EQ(CountRule(result, "naked-new", "src/leaky.cc"), 2);
  EXPECT_EQ(CountRule(result, "iostream-in-header", "src/noisy.h"), 1);
  // orphan_test is registered natively but has no _scalar registration.
  EXPECT_EQ(CountRule(result, "test-registration", "tests/orphan_test.cc"), 1);

  // Nothing beyond the four deliberate violation classes.
  EXPECT_EQ(result.findings.size(), 7u);
}

TEST(GlscLintTest, FindingsCarryLineNumbers) {
  const Result result = RunLint(FixtureRoot("bad"));
  for (const auto& f : result.findings) {
    EXPECT_GE(f.line, 1) << f.file << " [" << f.rule << "]";
  }
}

TEST(GlscLintTest, CleanFixturePassesViaAllowlist) {
  const Result result = RunLint(FixtureRoot("clean"));
  EXPECT_TRUE(result.findings.empty())
      << result.findings.front().file << ": "
      << result.findings.front().message;
  // The allowlisted raw-sync entry is USED, so it must not report as stale.
  EXPECT_TRUE(result.errors.empty()) << result.errors.front();
  EXPECT_TRUE(result.ok());
}

TEST(GlscLintTest, StaleAllowlistEntryIsAnError) {
  const Result result = RunLint(FixtureRoot("stale"));
  EXPECT_TRUE(result.findings.empty());
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors.front().find("stale entry"), std::string::npos)
      << result.errors.front();
  EXPECT_FALSE(result.ok());
}

TEST(GlscLintTest, StripperHandlesCommentsStringsAndRawStrings) {
  const std::string source =
      "int a; // std::mutex in a line comment\n"
      "/* new Thing() in a block comment */\n"
      "const char* s = \"delete p;\";\n"
      "const char* r = R\"(std::lock_guard)\";\n"
      "char c = '\\\"'; int live_new = 0;\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("std::mutex"), std::string::npos);
  EXPECT_EQ(stripped.find("new Thing"), std::string::npos);
  EXPECT_EQ(stripped.find("delete p"), std::string::npos);
  EXPECT_EQ(stripped.find("std::lock_guard"), std::string::npos);
  // Code outside literals survives, and newlines are preserved.
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("live_new"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
}

TEST(GlscLintTest, RealRepoIsClean) {
  const Result result = RunLint(GLSC_REPO_ROOT);
  for (const auto& f : result.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
  for (const auto& e : result.errors) {
    ADD_FAILURE() << e;
  }
  EXPECT_GT(result.files_scanned, 100);  // sanity: it really walked the tree
}

}  // namespace
}  // namespace glsc
