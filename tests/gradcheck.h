// Finite-difference gradient checking harness for explicit-backward layers.
// The scalar loss is a fixed random projection of the layer output,
// L = sum(w ⊙ f(x)), so dL/d(output) = w. Analytic input/parameter gradients
// from Backward are compared against central differences in relative error.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "nn/layer.h"
#include "tensor/ops.h"

namespace glsc::testing {

struct GradCheckResult {
  double max_rel_err_input = 0.0;
  double max_rel_err_params = 0.0;
};

// forward: must run the layer's Forward (training mode) and return the output.
// backward: must run Backward with the given output-gradient and return the
// input gradient. Parameter gradients are read from `params`.
inline GradCheckResult CheckGradients(
    const std::function<Tensor(const Tensor&)>& forward,
    const std::function<Tensor(const Tensor&)>& backward,
    const std::vector<nn::Param*>& params, Tensor input, Rng& rng,
    float eps = 1e-2f, int probes = 24) {
  GradCheckResult result;

  // Forward once to learn the output shape, build the projection, then do the
  // real forward/backward pass.
  Tensor out_probe = forward(input);
  Tensor proj = Tensor::Randn(out_probe.shape(), rng);
  // Consume the pending Backward so the layer cache is clear.
  backward(proj);

  auto loss_at = [&](const Tensor& x) {
    const Tensor out = forward(x);
    const double loss = DotProduct(out, proj);
    backward(proj);  // clears the cache; gradients accumulate but are unused
    return loss;
  };

  // Analytic gradients: zero param grads, one clean forward/backward, then
  // snapshot the parameter gradients (later loss_at calls keep accumulating
  // into p->grad, which we must not read).
  for (nn::Param* p : params) p->ZeroGrad();
  Tensor out = forward(input);
  Tensor grad_input = backward(proj);
  std::vector<Tensor> grad_snapshot;
  grad_snapshot.reserve(params.size());
  for (nn::Param* p : params) grad_snapshot.push_back(p->grad.Clone());

  // Central differences in float32 fight two error sources: truncation
  // (wants small eps) and round-off in the forward pass (wants large eps).
  // No single eps suits every coordinate, so each probe takes the best
  // agreement over a small eps ladder — a wrong backward still fails at
  // every eps, while float noise passes at one of them.
  auto probe_coord = [&](float* coord, double analytic) {
    double best = std::numeric_limits<double>::infinity();
    for (const float e : {eps, 3.0f * eps, eps / 3.0f}) {
      const float saved = *coord;
      *coord = saved + e;
      const double lp = loss_at(input);
      *coord = saved - e;
      const double lm = loss_at(input);
      *coord = saved;
      const double numeric = (lp - lm) / (2.0 * e);
      const double denom =
          std::max({std::fabs(numeric), std::fabs(analytic), 1e-3});
      best = std::min(best, std::fabs(numeric - analytic) / denom);
    }
    return best;
  };

  // Input gradient probes (random subset of coordinates for large tensors).
  const std::int64_t n = input.numel();
  for (int probe = 0; probe < probes; ++probe) {
    const auto i = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(n)));
    result.max_rel_err_input = std::max(result.max_rel_err_input,
                                        probe_coord(&input[i], grad_input[i]));
  }

  // Parameter gradient probes.
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    nn::Param* p = params[pi];
    const std::int64_t pn = p->value.numel();
    const int pp = std::min<std::int64_t>(probes, pn);
    for (int probe = 0; probe < pp; ++probe) {
      const auto i = static_cast<std::int64_t>(
          rng.UniformInt(static_cast<std::uint64_t>(pn)));
      result.max_rel_err_params =
          std::max(result.max_rel_err_params,
                   probe_coord(&p->value[i], grad_snapshot[pi][i]));
    }
  }
  return result;
}

}  // namespace glsc::testing
