// Finite-difference gradient verification for every layer in glsc::nn and
// the composite blocks of the diffusion UNet. These tests are the foundation
// the training results rest on: if they pass, the hand-written backward
// passes compute the true gradients.
#include <gtest/gtest.h>

#include "diffusion/spacetime_unet.h"
#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/norm.h"

namespace glsc {
namespace {

using testing::CheckGradients;

constexpr double kTol = 2e-2;

template <typename L>
void CheckLayer(L& layer, Tensor input, Rng& rng, double tol = kTol) {
  const auto result = CheckGradients(
      [&layer](const Tensor& x) { return layer.Forward(x, true); },
      [&layer](const Tensor& g) { return layer.Backward(g); }, layer.Params(),
      std::move(input), rng);
  EXPECT_LT(result.max_rel_err_input, tol) << "input gradient mismatch";
  EXPECT_LT(result.max_rel_err_params, tol) << "param gradient mismatch";
}

TEST(GradCheck, Dense) {
  Rng rng(1);
  nn::Dense layer(6, 9, rng);
  CheckLayer(layer, Tensor::Randn({4, 6}, rng), rng);
}

TEST(GradCheck, DenseNoBias) {
  Rng rng(2);
  nn::Dense layer(5, 3, rng, /*bias=*/false);
  CheckLayer(layer, Tensor::Randn({2, 7, 5}, rng), rng);
}

TEST(GradCheck, Conv2dStride1) {
  Rng rng(3);
  nn::Conv2d layer(3, 5, 3, 1, 1, rng);
  CheckLayer(layer, Tensor::Randn({2, 3, 6, 6}, rng), rng);
}

TEST(GradCheck, Conv2dStride2) {
  Rng rng(4);
  nn::Conv2d layer(2, 4, 5, 2, 2, rng);
  CheckLayer(layer, Tensor::Randn({2, 2, 8, 8}, rng), rng);
}

TEST(GradCheck, Conv2dKernel1) {
  Rng rng(5);
  nn::Conv2d layer(4, 4, 1, 1, 0, rng);
  CheckLayer(layer, Tensor::Randn({1, 4, 5, 5}, rng), rng);
}

TEST(GradCheck, NearestUpsample2x) {
  Rng rng(6);
  nn::NearestUpsample2x layer;
  CheckLayer(layer, Tensor::Randn({2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, AvgPool2x) {
  Rng rng(7);
  nn::AvgPool2x layer;
  CheckLayer(layer, Tensor::Randn({2, 3, 6, 6}, rng), rng);
}

TEST(GradCheck, SiLU) {
  Rng rng(8);
  nn::SiLU layer;
  CheckLayer(layer, Tensor::Randn({3, 17}, rng), rng);
}

TEST(GradCheck, ReLU) {
  Rng rng(9);
  nn::ReLU layer;
  // Keep values away from the kink at 0 for a clean finite difference.
  Tensor x = Tensor::Randn({40}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.1f) x[i] = 0.5f;
  }
  CheckLayer(layer, x, rng);
}

TEST(GradCheck, LeakyReLU) {
  Rng rng(10);
  nn::LeakyReLU layer(0.2f);
  Tensor x = Tensor::Randn({40}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.1f) x[i] = -0.5f;
  }
  CheckLayer(layer, x, rng);
}

TEST(GradCheck, Tanh) {
  Rng rng(11);
  nn::Tanh layer;
  CheckLayer(layer, Tensor::Randn({5, 7}, rng), rng);
}

TEST(GradCheck, FixedScale) {
  Rng rng(23);
  nn::FixedScale layer(8.0f);
  CheckLayer(layer, Tensor::Randn({3, 9}, rng), rng);
}

TEST(GradCheck, GroupNorm) {
  Rng rng(12);
  nn::GroupNorm layer(2, 6);
  CheckLayer(layer, Tensor::Randn({2, 6, 4, 4}, rng), rng);
}

TEST(GradCheck, GroupNormSingleGroup) {
  Rng rng(13);
  nn::GroupNorm layer(1, 3);
  CheckLayer(layer, Tensor::Randn({1, 3, 5, 5}, rng), rng);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(14);
  nn::LayerNorm layer(12);
  CheckLayer(layer, Tensor::Randn({3, 5, 12}, rng), rng);
}

TEST(GradCheck, MultiHeadSelfAttention) {
  Rng rng(15);
  nn::MultiHeadSelfAttention layer(8, 2, rng);
  CheckLayer(layer, Tensor::Randn({2, 5, 8}, rng), rng);
}

TEST(GradCheck, MultiHeadSelfAttentionSingleHead) {
  Rng rng(16);
  nn::MultiHeadSelfAttention layer(6, 1, rng);
  CheckLayer(layer, Tensor::Randn({1, 9, 6}, rng), rng);
}

TEST(GradCheck, SpatialAttentionBlock) {
  Rng rng(17);
  diffusion::SpatialAttentionBlock layer(8, 2, rng, "t");
  CheckLayer(layer, Tensor::Randn({3, 8, 3, 3}, rng), rng);
}

TEST(GradCheck, TemporalAttentionBlock) {
  Rng rng(18);
  diffusion::TemporalAttentionBlock layer(8, 2, rng, "t");
  CheckLayer(layer, Tensor::Randn({4, 8, 2, 3}, rng), rng);
}

TEST(GradCheck, Sequential) {
  Rng rng(19);
  nn::Sequential seq;
  seq.Emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng, "c1");
  seq.Emplace<nn::SiLU>();
  seq.Emplace<nn::Conv2d>(4, 2, 3, 1, 1, rng, "c2");
  CheckLayer(seq, Tensor::Randn({1, 2, 6, 6}, rng), rng);
}

TEST(GradCheck, ResBlock) {
  Rng rng(20);
  diffusion::ResBlock block(8, 8, rng, "rb");
  Tensor temb = Tensor::Randn({1, 8}, rng);
  const auto result = CheckGradients(
      [&](const Tensor& x) { return block.Forward(x, temb); },
      [&](const Tensor& g) {
        Tensor gt({1, 8});
        return block.Backward(g, &gt);
      },
      block.Params(), Tensor::Randn({2, 8, 4, 4}, rng), rng);
  EXPECT_LT(result.max_rel_err_input, kTol);
  EXPECT_LT(result.max_rel_err_params, kTol);
}

// Full UNet end-to-end gradient check (small geometry). This exercises skip
// connections, both attention factorizations and the time-embedding path.
TEST(GradCheck, SpaceTimeUNetFull) {
  Rng rng(21);
  diffusion::UNetConfig config;
  config.latent_channels = 4;
  config.model_channels = 8;
  config.heads = 2;
  config.seed = 99;
  diffusion::SpaceTimeUNet unet(config);
  // conv_out is zero-initialized for training stability; perturb all params
  // so the check does not trivially compare zeros against zeros.
  for (nn::Param* p : unet.Params()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      p->value[i] += 0.05f * rng.NormalF();
    }
  }
  const auto result = CheckGradients(
      [&](const Tensor& x) { return unet.Forward(x, 17); },
      [&](const Tensor& g) { return unet.Backward(g); }, unet.Params(),
      Tensor::Randn({4, 4, 4, 4}, rng), rng, /*eps=*/1e-2f, /*probes=*/8);
  // Float32 round-off through ~20 layers dominates the finite difference;
  // a sign/term bug would show up as O(1) relative error, not <10%.
  EXPECT_LT(result.max_rel_err_input, 8e-2);
  EXPECT_LT(result.max_rel_err_params, 8e-2);
}

TEST(GradCheck, SpaceTimeUNetNoStage1Attention) {
  Rng rng(22);
  diffusion::UNetConfig config;
  config.latent_channels = 2;
  config.in_channels = 3;
  config.out_channels = 1;
  config.model_channels = 8;
  config.heads = 2;
  config.stage1_attention = false;
  config.seed = 100;
  diffusion::SpaceTimeUNet unet(config);
  for (nn::Param* p : unet.Params()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      p->value[i] += 0.05f * rng.NormalF();
    }
  }
  const auto result = CheckGradients(
      [&](const Tensor& x) { return unet.Forward(x, 3); },
      [&](const Tensor& g) { return unet.Backward(g); }, unet.Params(),
      Tensor::Randn({2, 3, 4, 4}, rng), rng, /*eps=*/1e-2f, /*probes=*/12);
  EXPECT_LT(result.max_rel_err_input, 5e-2);
  EXPECT_LT(result.max_rel_err_params, 5e-2);
}

}  // namespace
}  // namespace glsc
