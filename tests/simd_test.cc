// Tests for the runtime-dispatched SIMD backend: every dispatch level the
// host supports is exercised in-process via ScopedIsaOverride and compared
// against naive references (GEMM) or the scalar kernel table (elementwise).
// The entropy-coder bulk APIs are integer-only and must produce bitstreams
// that are byte-identical at every level.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "codec/gaussian_model.h"
#include "codec/range_coder.h"
#include "tensor/gemm.h"
#include "tensor/simd/dispatch.h"
#include "tensor/simd/kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace glsc {
namespace {

std::vector<simd::IsaLevel> TestableLevels() {
  std::vector<simd::IsaLevel> levels{simd::IsaLevel::kScalar};
  const simd::IsaLevel max = simd::DetectedIsa();
  if (max >= simd::IsaLevel::kSSE2) levels.push_back(simd::IsaLevel::kSSE2);
  if (max >= simd::IsaLevel::kAVX2) levels.push_back(simd::IsaLevel::kAVX2);
  if (max >= simd::IsaLevel::kAVX512) {
    levels.push_back(simd::IsaLevel::kAVX512);
  }
  return levels;
}

// Plain triple-loop reference, the semantics Gemm must reproduce.
void NaiveGemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const float* a, std::int64_t lda,
               const float* b, std::int64_t ldb, float beta, float* c,
               std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] =
          alpha * static_cast<float>(acc) + beta * c[i * ldc + j];
    }
  }
}

struct GemmShape {
  std::int64_t m, n, k;
};

TEST(SimdGemm, MatchesNaiveReferenceAcrossLevels) {
  const GemmShape shapes[] = {{1, 1, 1},   {3, 5, 7},    {6, 16, 8},
                              {4, 8, 4},   {13, 17, 19}, {12, 32, 5},
                              {33, 70, 65}, {64, 64, 64}};
  Rng rng(11);
  for (const simd::IsaLevel level : TestableLevels()) {
    simd::ScopedIsaOverride override_level(level);
    for (const GemmShape& s : shapes) {
      for (const bool ta : {false, true}) {
        for (const bool tb : {false, true}) {
          // Strided operands: leading dimensions exceed the logical extents.
          const std::int64_t lda = (ta ? s.m : s.k) + 3;
          const std::int64_t ldb = (tb ? s.k : s.n) + 2;
          const std::int64_t ldc = s.n + 5;
          Tensor a = Tensor::Randn({ta ? s.k : s.m, lda}, rng);
          Tensor b = Tensor::Randn({tb ? s.n : s.k, ldb}, rng);
          Tensor c = Tensor::Randn({s.m, ldc}, rng);
          Tensor expected = c.Clone();

          const float alpha = 1.25f;
          const float beta = 0.5f;
          Gemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), lda, b.data(), ldb,
               beta, c.data(), ldc);
          NaiveGemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), lda, b.data(),
                    ldb, beta, expected.data(), ldc);

          for (std::int64_t i = 0; i < s.m; ++i) {
            for (std::int64_t j = 0; j < s.n; ++j) {
              const float got = c[i * ldc + j];
              const float want = expected[i * ldc + j];
              ASSERT_NEAR(got, want,
                          1e-4f * (1.0f + std::fabs(want)))
                  << "level=" << simd::IsaName(level) << " m=" << s.m
                  << " n=" << s.n << " k=" << s.k << " ta=" << ta
                  << " tb=" << tb << " at (" << i << "," << j << ")";
            }
          }
        }
      }
    }
  }
}

TEST(SimdGemm, BetaZeroOverwritesAndKZeroStillAppliesEpilogue) {
  for (const simd::IsaLevel level : TestableLevels()) {
    simd::ScopedIsaOverride override_level(level);
    Rng rng(12);
    Tensor c = Tensor::Full({3, 4}, 42.0f);
    std::vector<float> bias{1.0f, 2.0f, 3.0f};
    // k == 0: the product is empty, beta==0 zeroes C, the bias must still
    // land.
    GemmEx(false, false, 3, 4, 0, 1.0f, nullptr, 1, nullptr, 1, 0.0f,
           c.data(), 4, bias.data(), GemmEpilogue::kBiasRow);
    for (std::int64_t i = 0; i < 3; ++i) {
      for (std::int64_t j = 0; j < 4; ++j) {
        EXPECT_FLOAT_EQ(c[i * 4 + j], bias[static_cast<std::size_t>(i)])
            << "level=" << simd::IsaName(level);
      }
    }
  }
}

float SiluRef(float x) { return x / (1.0f + std::exp(-x)); }

TEST(SimdGemm, FusedEpiloguesMatchUnfusedAcrossLevels) {
  const std::int64_t m = 19, n = 23, k = 31;
  Rng rng(13);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor row_bias = Tensor::Randn({m}, rng);
  Tensor col_bias = Tensor::Randn({n}, rng);

  // Unfused reference: plain product, then bias, then activation.
  Tensor base({m, n});
  NaiveGemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
            base.data(), n);

  struct Case {
    GemmEpilogue ep;
    bool per_col;
    bool silu;
  };
  const Case cases[] = {{GemmEpilogue::kBiasRow, false, false},
                        {GemmEpilogue::kBiasCol, true, false},
                        {GemmEpilogue::kBiasRowSiLU, false, true},
                        {GemmEpilogue::kBiasColSiLU, true, true}};
  for (const simd::IsaLevel level : TestableLevels()) {
    simd::ScopedIsaOverride override_level(level);
    for (const Case& cs : cases) {
      Tensor c({m, n});
      const float* bias = cs.per_col ? col_bias.data() : row_bias.data();
      GemmEx(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
             c.data(), n, bias, cs.ep);
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          float want = base[i * n + j] + (cs.per_col ? col_bias[j] : row_bias[i]);
          if (cs.silu) want = SiluRef(want);
          ASSERT_NEAR(c[i * n + j], want, 1e-4f * (1.0f + std::fabs(want)))
              << "level=" << simd::IsaName(level) << " per_col=" << cs.per_col
              << " silu=" << cs.silu;
        }
      }
    }
  }
}

TEST(SimdElementwise, MatchesScalarKernelsAcrossLevels) {
  const std::int64_t n = 1003;  // odd length exercises every tail path
  Rng rng(14);
  Tensor x = Tensor::Randn({n}, rng, 3.0f);
  Tensor g = Tensor::Randn({n}, rng);
  const simd::KernelTable& scalar =
      simd::KernelsFor(simd::IsaLevel::kScalar);

  Tensor silu_ref({n}), silu_bwd_ref({n});
  scalar.silu_fwd(x.data(), silu_ref.data(), n);
  scalar.silu_bwd(x.data(), g.data(), silu_bwd_ref.data(), n);
  double sum_ref = 0.0, sumsq_ref = 0.0;
  scalar.moments(x.data(), n, &sum_ref, &sumsq_ref);
  Tensor norm_ref({n});
  scalar.norm_affine(x.data(), 0.25f, 1.5f, 0.8f, -0.1f, norm_ref.data(), n);
  Tensor softmax_ref = x.Clone();
  scalar.softmax_row(softmax_ref.data(), n);

  for (const simd::IsaLevel level : TestableLevels()) {
    const simd::KernelTable& kernels = simd::KernelsFor(level);

    Tensor y({n});
    kernels.silu_fwd(x.data(), y.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(y[i], silu_ref[i], 1e-5f * (1.0f + std::fabs(silu_ref[i])))
          << "silu_fwd level=" << simd::IsaName(level) << " i=" << i;
    }

    kernels.silu_bwd(x.data(), g.data(), y.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(y[i], silu_bwd_ref[i],
                  1e-5f * (1.0f + std::fabs(silu_bwd_ref[i])))
          << "silu_bwd level=" << simd::IsaName(level) << " i=" << i;
    }

    double sum = 0.0, sumsq = 0.0;
    kernels.moments(x.data(), n, &sum, &sumsq);
    EXPECT_NEAR(sum, sum_ref, 1e-6 * (1.0 + std::fabs(sum_ref)));
    EXPECT_NEAR(sumsq, sumsq_ref, 1e-6 * (1.0 + std::fabs(sumsq_ref)));

    kernels.norm_affine(x.data(), 0.25f, 1.5f, 0.8f, -0.1f, y.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(y[i], norm_ref[i], 1e-5f * (1.0f + std::fabs(norm_ref[i])))
          << "norm_affine level=" << simd::IsaName(level) << " i=" << i;
    }

    Tensor sm = x.Clone();
    kernels.softmax_row(sm.data(), n);
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(sm[i], softmax_ref[i], 1e-6f)
          << "softmax level=" << simd::IsaName(level) << " i=" << i;
      total += sm[i];
    }
    EXPECT_NEAR(total, 1.0, 1e-4);
  }
}

TEST(SimdDispatch, OverrideWinsAndRestores) {
  const simd::IsaLevel native = simd::ActiveIsa();
  {
    simd::ScopedIsaOverride force_scalar(simd::IsaLevel::kScalar);
    EXPECT_EQ(simd::ActiveIsa(), simd::IsaLevel::kScalar);
    EXPECT_EQ(simd::ActiveKernels().level, simd::IsaLevel::kScalar);
  }
  EXPECT_EQ(simd::ActiveIsa(), native);
  // Requests above the detected level clamp instead of failing.
  {
    simd::ScopedIsaOverride force_max(simd::IsaLevel::kAVX512);
    EXPECT_LE(simd::ActiveIsa(), simd::DetectedIsa());
  }
}

// ---- entropy coder: bulk APIs and cross-level bitstream identity ----

TEST(SimdCodec, SpanApisMatchPerSymbolCoding) {
  // A small skewed table plus a symbol stream; EncodeSpan must be
  // byte-identical to per-symbol Encode, and DecodeSpan must reproduce the
  // symbols with the stop-symbol semantics.
  const std::vector<std::uint32_t> freq{7, 1, 20, 5, 3, 12};
  std::vector<std::uint32_t> cum(freq.size() + 1, 0);
  for (std::size_t i = 0; i < freq.size(); ++i) cum[i + 1] = cum[i] + freq[i];
  const std::uint32_t total = cum.back();

  Rng rng(15);
  std::vector<std::int32_t> syms(4096);
  for (auto& s : syms) {
    s = static_cast<std::int32_t>(rng.UniformInt(
        static_cast<std::uint64_t>(freq.size())));
  }

  codec::RangeEncoder per_symbol;
  for (const std::int32_t s : syms) {
    per_symbol.Encode(cum[static_cast<std::size_t>(s)],
                      freq[static_cast<std::size_t>(s)], total);
  }
  const auto ref_bytes = per_symbol.Finish();

  codec::RangeEncoder bulk;
  bulk.Reserve(syms.size());
  bulk.EncodeSpan(cum.data(), freq.data(), total, syms.data(), syms.size());
  const auto bulk_bytes = bulk.Finish();
  EXPECT_EQ(ref_bytes, bulk_bytes);

  codec::RangeDecoder dec(bulk_bytes.data(), bulk_bytes.size());
  std::vector<std::int32_t> decoded(syms.size());
  std::size_t got = 0;
  while (got < decoded.size()) {
    // stop_sym = 2 forces repeated re-entry, exercising the resume path.
    got += dec.DecodeSpan(cum.data(), freq.data(),
                          static_cast<std::uint32_t>(freq.size()), total,
                          /*stop_sym=*/2, decoded.data() + got,
                          decoded.size() - got);
  }
  EXPECT_EQ(decoded, syms);
}

TEST(SimdCodec, GaussianBitstreamIdenticalAcrossLevelsAndRoundTrips) {
  Rng rng(16);
  const Shape shape{3, 4, 16, 16};
  Tensor mu(shape), sigma(shape), y(shape);
  const std::int64_t n = y.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    // Piecewise-constant parameters -> long runs with occasional breaks;
    // escapes included via the occasional huge offset.
    const bool new_block = (i % 97) == 0;
    mu[i] = new_block ? 2.0f * rng.NormalF() : mu[i - 1];
    sigma[i] = new_block ? std::exp(rng.NormalF()) : sigma[i - 1];
    y[i] = std::nearbyint(mu[i] + sigma[i] * rng.NormalF());
    if ((i % 501) == 0) y[i] = std::nearbyint(mu[i]) + 300.0f;  // escape
  }

  std::vector<std::vector<std::uint8_t>> streams;
  for (const simd::IsaLevel level : TestableLevels()) {
    simd::ScopedIsaOverride override_level(level);
    codec::GaussianConditionalModel model;
    auto bytes = model.Encode(y, mu, sigma);
    Tensor back = model.Decode(bytes, mu, sigma);
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(back[i], y[i])
          << "round-trip level=" << simd::IsaName(level) << " i=" << i;
    }
    streams.push_back(std::move(bytes));
  }
  // The coder is integer-only: every level must emit identical bytes (and
  // therefore identical coded sizes).
  for (std::size_t i = 1; i < streams.size(); ++i) {
    EXPECT_EQ(streams[i], streams[0]) << "level index " << i;
  }

  // Cross-level decode: a scalar-encoded stream decodes under the native
  // kernels (and vice versa, covered by the identity above).
  simd::ScopedIsaOverride force_scalar(simd::IsaLevel::kScalar);
  codec::GaussianConditionalModel model;
  Tensor back = model.Decode(streams.back(), mu, sigma);
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(back[i], y[i]) << "cross-level decode i=" << i;
  }
}

}  // namespace
}  // namespace glsc
