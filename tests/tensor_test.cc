#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/metrics.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace glsc {
namespace {

TEST(Tensor, ZerosAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, AtIndexing) {
  Tensor t({2, 3});
  t.At({1, 2}) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  EXPECT_EQ(t.At({1, 2}), 5.0f);
}

TEST(Tensor, CloneIsDeep) {
  Tensor a({4});
  a[0] = 1.0f;
  Tensor b = a.Clone();
  b[0] = 2.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor a({2, 6});
  Tensor b = a.Reshape({3, 4});
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 7.0f);
  EXPECT_THROW(a.Reshape({5}), std::runtime_error);
}

TEST(Tensor, PermuteRoundTrip) {
  Rng rng(3);
  Tensor a = Tensor::Randn({2, 3, 4, 5}, rng);
  Tensor p = a.Permute({2, 0, 3, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 5, 3}));
  // Inverse permutation restores the original.
  Tensor back = p.Permute({1, 3, 0, 2});
  EXPECT_EQ(back.shape(), a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(back[i], a[i]);
}

TEST(Tensor, PermuteValues) {
  Tensor a({2, 3});
  for (std::int64_t i = 0; i < 6; ++i) a[i] = static_cast<float>(i);
  Tensor t = a.Permute({1, 0});
  EXPECT_EQ(t.At({0, 0}), 0.0f);
  EXPECT_EQ(t.At({0, 1}), 3.0f);
  EXPECT_EQ(t.At({2, 1}), 5.0f);
}

TEST(Tensor, Slice0AndConcat0) {
  Rng rng(4);
  Tensor a = Tensor::Randn({6, 3}, rng);
  Tensor lo = a.Slice0(0, 2);
  Tensor hi = a.Slice0(2, 6);
  Tensor joined = Concat0({lo, hi});
  EXPECT_EQ(joined.shape(), a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(joined[i], a[i]);
}

TEST(Tensor, MinMaxSumMean) {
  Tensor t({4});
  t[0] = -2.0f; t[1] = 3.0f; t[2] = 0.5f; t[3] = -0.5f;
  EXPECT_FLOAT_EQ(t.MinValue(), -2.0f);
  EXPECT_FLOAT_EQ(t.MaxValue(), 3.0f);
  EXPECT_DOUBLE_EQ(t.Sum(), 1.0);
  EXPECT_DOUBLE_EQ(t.Mean(), 0.25);
  EXPECT_TRUE(t.AllFinite());
  t[2] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.AllFinite());
}

// ---- GEMM: parameterized against a naive reference ----

struct GemmCase {
  std::int64_t m, n, k;
  bool ta, tb;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto& p = GetParam();
  Rng rng(11);
  // Build op(A), op(B) logically MxK and KxN; store possibly transposed.
  const std::int64_t a_rows = p.ta ? p.k : p.m;
  const std::int64_t a_cols = p.ta ? p.m : p.k;
  const std::int64_t b_rows = p.tb ? p.n : p.k;
  const std::int64_t b_cols = p.tb ? p.k : p.n;
  Tensor a = Tensor::Randn({a_rows, a_cols}, rng);
  Tensor b = Tensor::Randn({b_rows, b_cols}, rng);
  Tensor c = Tensor::Randn({p.m, p.n}, rng);
  Tensor c_ref = c.Clone();

  const float alpha = 1.3f, beta = 0.7f;
  Gemm(p.ta, p.tb, p.m, p.n, p.k, alpha, a.data(), a_cols, b.data(), b_cols,
       beta, c.data(), p.n);

  for (std::int64_t i = 0; i < p.m; ++i) {
    for (std::int64_t j = 0; j < p.n; ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < p.k; ++l) {
        const float av = p.ta ? a[l * a_cols + i] : a[i * a_cols + l];
        const float bv = p.tb ? b[j * b_cols + l] : b[l * b_cols + j];
        acc += static_cast<double>(av) * bv;
      }
      const double expect = alpha * acc + beta * c_ref[i * p.n + j];
      EXPECT_NEAR(c[i * p.n + j], expect, 1e-3 * (1.0 + std::fabs(expect)))
          << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(GemmCase{1, 1, 1, false, false},
                      GemmCase{3, 5, 7, false, false},
                      GemmCase{4, 8, 4, true, false},
                      GemmCase{8, 3, 6, false, true},
                      GemmCase{5, 5, 5, true, true},
                      GemmCase{130, 17, 40, false, false},
                      GemmCase{9, 520, 70, false, true},
                      GemmCase{33, 65, 300, false, false}));

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Tensor c({2, 2});
  c[0] = std::numeric_limits<float>::quiet_NaN();
  Tensor a({2, 1}), b({1, 2});
  a.Fill(1.0f);
  b.Fill(2.0f);
  Gemm(false, false, 2, 2, 1, 1.0f, a.data(), 1, b.data(), 2, 0.0f, c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
}

// ---- im2col / col2im ----

TEST(Im2Col, KnownValues) {
  // 1 channel, 3x3 input, 2x2 kernel, stride 1, no padding.
  Tensor x({1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  std::vector<float> cols(4 * 4);
  Im2Col(x.data(), 1, 3, 3, 2, 2, 1, 0, cols.data());
  // Row 0 = kernel offset (0,0): values at output positions.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
  EXPECT_FLOAT_EQ(cols[1], 1.0f);
  EXPECT_FLOAT_EQ(cols[2], 3.0f);
  EXPECT_FLOAT_EQ(cols[3], 4.0f);
  // Row 3 = kernel offset (1,1).
  EXPECT_FLOAT_EQ(cols[12], 4.0f);
  EXPECT_FLOAT_EQ(cols[15], 8.0f);
}

// col2im is the adjoint of im2col: <Im2Col(x), c> == <x, Col2Im(c)>.
TEST(Im2Col, AdjointProperty) {
  Rng rng(13);
  const std::int64_t ch = 2, h = 5, w = 6, k = 3, stride = 2, pad = 1;
  const std::int64_t oh = ConvOutDim(h, k, stride, pad);
  const std::int64_t ow = ConvOutDim(w, k, stride, pad);
  Tensor x = Tensor::Randn({ch, h, w}, rng);
  Tensor c = Tensor::Randn({ch * k * k, oh * ow}, rng);

  Tensor ix({ch * k * k, oh * ow});
  Im2Col(x.data(), ch, h, w, k, k, stride, pad, ix.data());
  Tensor cx({ch, h, w});
  Col2Im(c.data(), ch, h, w, k, k, stride, pad, cx.data());

  EXPECT_NEAR(DotProduct(ix, c), DotProduct(x, cx), 1e-3);
}

// ---- elementwise ops & reductions ----

TEST(Ops, Arithmetic) {
  Tensor a({3}), b({3});
  a[0] = 1; a[1] = 2; a[2] = 3;
  b[0] = 4; b[1] = 5; b[2] = 6;
  EXPECT_FLOAT_EQ(Add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(Sub(a, b)[2], -3.0f);
  EXPECT_FLOAT_EQ(Mul(a, b)[0], 4.0f);
  EXPECT_FLOAT_EQ(Div(b, a)[1], 2.5f);
  EXPECT_THROW(Add(a, Tensor({4})), std::runtime_error);
}

TEST(Ops, AxpyAndScalar) {
  Tensor x({2}), y({2});
  x[0] = 1; x[1] = 2;
  y[0] = 10; y[1] = 20;
  Axpy(2.0f, x, &y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
  Tensor z = MulScalar(AddScalar(x, 1.0f), 3.0f);
  EXPECT_FLOAT_EQ(z[1], 9.0f);
}

TEST(Ops, RoundClampAbs) {
  Tensor a({4});
  a[0] = -1.6f; a[1] = 0.4f; a[2] = 2.5f; a[3] = -0.5f;
  const Tensor r = Round(a);
  EXPECT_FLOAT_EQ(r[0], -2.0f);
  EXPECT_FLOAT_EQ(r[1], 0.0f);
  // nearbyint uses banker's rounding: 2.5 -> 2, -0.5 -> 0.
  EXPECT_FLOAT_EQ(r[2], 2.0f);
  EXPECT_FLOAT_EQ(r[3], -0.0f);
  const Tensor c = Clamp(a, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(c[0], -1.0f);
  EXPECT_FLOAT_EQ(c[2], 1.0f);
  EXPECT_FLOAT_EQ(Abs(a)[0], 1.6f);
}

TEST(Ops, MseAndSumSquares) {
  Tensor a({2}), b({2});
  a[0] = 1; a[1] = 3;
  b[0] = 2; b[1] = 5;
  EXPECT_DOUBLE_EQ(MeanSquaredError(a, b), (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(SumSquares(a), 10.0);
}

TEST(Ops, SymmetricEigenDiagonalizes) {
  // Known symmetric matrix with analytic eigenvalues {3, 1}.
  std::vector<double> m{2.0, 1.0, 1.0, 2.0};
  std::vector<double> vals, vecs;
  SymmetricEigen(m, 2, &vals, &vecs);
  EXPECT_NEAR(vals[0], 3.0, 1e-10);
  EXPECT_NEAR(vals[1], 1.0, 1e-10);
  // Columns are orthonormal.
  const double dot = vecs[0] * vecs[1] + vecs[2] * vecs[3];
  EXPECT_NEAR(dot, 0.0, 1e-10);
}

TEST(Ops, SymmetricEigenReconstructs) {
  Rng rng(17);
  const int n = 12;
  // Random symmetric PSD matrix A = B B^T.
  std::vector<double> b(n * n);
  for (auto& v : b) v = rng.Normal();
  std::vector<double> a(n * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) a[i * n + j] += b[i * n + k] * b[j * n + k];
    }
  }
  std::vector<double> vals, vecs;
  SymmetricEigen(a, n, &vals, &vecs);
  // Eigenvalues descending and non-negative.
  for (int i = 1; i < n; ++i) EXPECT_LE(vals[i], vals[i - 1] + 1e-9);
  EXPECT_GE(vals[n - 1], -1e-9);
  // V diag(vals) V^T == A.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) {
        acc += vecs[i * n + k] * vals[k] * vecs[j * n + k];
      }
      EXPECT_NEAR(acc, a[i * n + j], 1e-8 * (1.0 + std::fabs(a[i * n + j])));
    }
  }
}

// ---- metrics ----

TEST(Metrics, NrmseMatchesDefinition) {
  Tensor orig({4});
  orig[0] = 0; orig[1] = 10; orig[2] = 5; orig[3] = 5;
  Tensor rec = orig.Clone();
  rec[2] = 7;  // squared error 4, mse 1 over 4 points
  const double expected = std::sqrt(4.0 / 4.0) / 10.0;
  EXPECT_NEAR(Nrmse(orig, rec), expected, 1e-12);
}

TEST(Metrics, PsnrIdenticalIsLarge) {
  Rng rng(19);
  Tensor a = Tensor::Randn({32}, rng);
  EXPECT_GE(Psnr(a, a), 200.0);
  EXPECT_GE(Psnr(a, AddScalar(a, 0.01f)), 20.0);
}

TEST(Metrics, PsnrIsFiniteOnDegenerateInputs) {
  // Identical inputs: MSE 0 must clamp to the 200 dB cap, never +inf (the
  // bench harness emits PSNR into JSON, where inf breaks parsing).
  Rng rng(20);
  Tensor a = Tensor::Randn({64}, rng);
  const double identical = Psnr(a, a);
  EXPECT_TRUE(std::isfinite(identical));
  EXPECT_DOUBLE_EQ(identical, 200.0);

  // Constant original (zero range) against a different reconstruction used
  // to take log10(0) = -inf through the range term.
  Tensor flat = Tensor::Full({64}, 3.0f);
  const double constant = Psnr(flat, AddScalar(flat, 0.5f));
  EXPECT_TRUE(std::isfinite(constant));
  // Constant AND identical hits both degeneracies at once.
  EXPECT_DOUBLE_EQ(Psnr(flat, flat), 200.0);
}

TEST(Metrics, CompressionRatio) {
  EXPECT_DOUBLE_EQ(CompressionRatio(1000, 50, 50), 10.0);
  EXPECT_DOUBLE_EQ(CompressionRatio(1000, 0, 0), 0.0);
}

TEST(Metrics, MaxAbsError) {
  Tensor a({3}), b({3});
  a[0] = 1; a[1] = 2; a[2] = 3;
  b[0] = 1; b[1] = 2.5f; b[2] = 2.9f;
  EXPECT_NEAR(MaxAbsError(a, b), 0.5, 1e-6);
}

}  // namespace
}  // namespace glsc
