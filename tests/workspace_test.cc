// Workspace arena + zero-allocation inference path tests: arena mechanics
// (alignment, scoped rewind, cached-slab reuse, stats), borrowed-storage
// Tensor semantics, and byte-identity of every workspace-aware Forward /
// decode path against the allocating reference — at both dispatch
// registrations (native + _scalar).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "api/adapters.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "core/glsc_compressor.h"
#include "data/field_generators.h"
#include "diffusion/sampler.h"
#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

namespace glsc {
namespace {

using tensor::Workspace;

void ExpectBytesEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)))
      << "tensors differ bitwise";
}

// ---------------------------------------------------------------------------
// Arena mechanics.
// ---------------------------------------------------------------------------

TEST(WorkspaceTest, AllocationsAreAligned) {
  Workspace ws;
  for (const std::int64_t n : {1, 3, 17, 1000}) {
    float* p = ws.Allocate(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    p[0] = 1.0f;  // must be writable
    p[n - 1] = 2.0f;
  }
  EXPECT_EQ(ws.stats().borrows, 4);
  EXPECT_EQ(ws.stats().slab_allocations, 1);  // everything fits slab 0
}

TEST(WorkspaceTest, ScopeRewindsBumpState) {
  Workspace ws;
  ws.Allocate(100);
  const std::int64_t outer = ws.bytes_in_use();
  {
    Workspace::Scope scope(&ws);
    ws.Allocate(5000);
    EXPECT_GT(ws.bytes_in_use(), outer);
  }
  EXPECT_EQ(ws.bytes_in_use(), outer);
  // Null workspace: scope is a no-op.
  Workspace::Scope noop(nullptr);
}

TEST(WorkspaceTest, SlabsAreCachedAcrossScopes) {
  Workspace ws;
  // Force growth past the first slab.
  {
    Workspace::Scope scope(&ws);
    ws.Allocate(1 << 20);  // 4 MiB of floats
    ws.Allocate(1 << 20);
  }
  const std::int64_t grown = ws.stats().slab_allocations;
  EXPECT_GE(grown, 1);
  // Steady state: the same allocation pattern reuses the cached slabs.
  for (int round = 0; round < 5; ++round) {
    Workspace::Scope scope(&ws);
    ws.Allocate(1 << 20);
    ws.Allocate(1 << 20);
  }
  EXPECT_EQ(ws.stats().slab_allocations, grown);
  EXPECT_EQ(ws.bytes_in_use(), 0);
  EXPECT_GE(ws.stats().peak_bytes, 8 << 20);
}

TEST(WorkspaceTest, NestedScopesRewindInOrder) {
  Workspace ws;
  ws.Allocate(16);
  const std::int64_t base = ws.bytes_in_use();
  {
    Workspace::Scope outer(&ws);
    ws.Allocate(1024);
    const std::int64_t mid = ws.bytes_in_use();
    {
      Workspace::Scope inner(&ws);
      ws.Allocate(1 << 21);  // grows into a second slab
      ws.Allocate(64);
    }
    EXPECT_EQ(ws.bytes_in_use(), mid);
    // Allocations after an inner rewind land back in the cached slabs.
    ws.Allocate(1 << 21);
  }
  EXPECT_EQ(ws.bytes_in_use(), base);
}

TEST(WorkspaceTest, FilteredArchiveDecodeStaysZeroAllocAtSteadyState) {
  // The v4 container routes filter/LZ scratch through the workspace; the
  // zero-heap steady-state invariant must survive a filtered-record decode
  // loop exactly as it does for the inference paths below.
  Rng rng(23);
  std::vector<data::FrameNorm> norms(1 * 16);
  for (auto& n : norms) {
    n.mean = rng.NormalF();
    n.range = 1.0f + rng.UniformF();
  }
  core::DatasetArchive archive("sz", {1, 16, 8, 8}, 8, norms);
  for (std::int64_t t0 = 0; t0 < 16; t0 += 8) {
    std::vector<std::uint8_t> payload(3000);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(i / 9 + rng.UniformInt(2));
    }
    archive.Add(0, t0, 8, std::move(payload));
  }
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  Workspace ws;
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < reader.records().size(); ++i) {
    ASSERT_FALSE(reader.records()[i].filter.IsRaw());
    reader.ReadPayloadInto(i, &out, &ws);
  }
  const std::int64_t slabs = ws.stats().slab_allocations;
  const std::int64_t borrows = ws.stats().borrows;
  for (int pass = 0; pass < 16; ++pass) {
    for (std::size_t i = 0; i < reader.records().size(); ++i) {
      reader.ReadPayloadInto(i, &out, &ws);
    }
  }
  EXPECT_EQ(ws.stats().slab_allocations, slabs)
      << "filtered decode allocated new slabs at steady state";
  EXPECT_GT(ws.stats().borrows, borrows);  // scratch really went through ws
}

TEST(WorkspaceTest, NewTensorAndNewZeroed) {
  Workspace ws;
  Tensor t = ws.NewTensor({4, 5});
  EXPECT_TRUE(t.defined());
  EXPECT_TRUE(t.borrowed());
  t.Fill(3.0f);
  Tensor z = ws.NewZeroed({8});
  for (std::int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z[i], 0.0f);
  // Clone lifts a borrowed view into owned storage.
  Tensor owned = t.Clone();
  EXPECT_FALSE(owned.borrowed());
  ExpectBytesEqual(t, owned);
}

TEST(WorkspaceTest, MovedFromTensorIsUndefined) {
  Tensor a = Tensor::Full({4}, 2.0f);
  Tensor b = std::move(a);
  // The source must read as default-constructed — a stale ptr_ here would be
  // a silent use-after-free once b releases the storage.
  EXPECT_FALSE(a.defined());  // NOLINT(bugprone-use-after-move): the contract
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(b.defined());
  EXPECT_FLOAT_EQ(b[3], 2.0f);
  a = std::move(b);
  EXPECT_FALSE(b.defined());  // NOLINT(bugprone-use-after-move): the contract
  EXPECT_TRUE(a.defined());
}

TEST(WorkspaceTest, TensorEmptyIsOwnedAndWritable) {
  Tensor t = Tensor::Empty({3, 7});
  EXPECT_TRUE(t.defined());
  EXPECT_FALSE(t.borrowed());
  t.Fill(1.5f);
  EXPECT_FLOAT_EQ(t.MinValue(), 1.5f);
  // Reshape shares storage for borrowed and owned tensors alike.
  Tensor r = t.Reshape({7, 3});
  EXPECT_EQ(r.data(), t.data());
}

// ---------------------------------------------------------------------------
// Layer-level byte identity: Forward(x, ws) == Forward(x, false).
// ---------------------------------------------------------------------------

TEST(WorkspaceNnTest, DenseForwardMatches) {
  Rng rng(11);
  nn::Dense dense(12, 20, rng, /*bias=*/true, "ws.dense");
  const Tensor x = Tensor::Randn({5, 12}, rng);
  const Tensor ref = dense.Forward(x, /*training=*/false);
  Workspace ws;
  const Tensor got = dense.Forward(x, &ws);
  EXPECT_TRUE(got.borrowed());
  ExpectBytesEqual(ref, got);
}

TEST(WorkspaceNnTest, Conv2dForwardMatchesAndScratchPersists) {
  Rng rng(13);
  nn::Conv2d conv(3, 6, 3, 1, 1, rng, "ws.conv");
  const Tensor x = Tensor::Randn({2, 3, 16, 16}, rng);
  const Tensor ref = conv.Forward(x, /*training=*/false);
  Workspace ws;
  for (int round = 0; round < 3; ++round) {
    Workspace::Scope scope(&ws);
    const Tensor got = conv.Forward(x, &ws);
    ExpectBytesEqual(ref, got);
  }
  // Shape changes only ever grow the cached im2col scratch.
  const Tensor small = Tensor::Randn({1, 3, 8, 8}, rng);
  Workspace::Scope scope(&ws);
  const Tensor got_small = conv.Forward(small, &ws);
  ExpectBytesEqual(conv.Forward(small, false), got_small);
}

TEST(WorkspaceNnTest, Conv2dBackwardSharesForwardScratch) {
  // Two identically-seeded convs must produce identical grads whether or not
  // the instance's scratch was pre-grown by earlier calls.
  Rng rng_a(17), rng_b(17);
  nn::Conv2d warm(3, 4, 3, 2, 1, rng_a, "ws.conv.warm");
  nn::Conv2d cold(3, 4, 3, 2, 1, rng_b, "ws.conv.cold");
  Rng data_rng(23);
  const Tensor x = Tensor::Randn({2, 3, 16, 16}, data_rng);
  const Tensor g = Tensor::Full({2, 4, 8, 8}, 0.5f);

  // Warm up the scratch with a different geometry first.
  const Tensor other = Tensor::Randn({1, 3, 8, 8}, data_rng);
  warm.Forward(other, true);
  warm.Backward(Tensor::Full({1, 4, 4, 4}, 1.0f));

  warm.Forward(x, true);
  const Tensor grad_warm = warm.Backward(g);
  cold.Forward(x, true);
  const Tensor grad_cold = cold.Backward(g);
  ExpectBytesEqual(grad_cold, grad_warm);
}

TEST(WorkspaceNnTest, AttentionForwardMatches) {
  Rng rng(19);
  nn::MultiHeadSelfAttention attn(16, 4, rng, "ws.attn");
  const Tensor x = Tensor::Randn({3, 10, 16}, rng);
  const Tensor ref = attn.Forward(x, /*training=*/false);
  attn.Backward(Tensor::Zeros(ref.shape()));  // clear the forward cache
  Workspace ws;
  const Tensor got = attn.Forward(x, &ws);
  ExpectBytesEqual(ref, got);
}

TEST(WorkspaceNnTest, NormsMatchIncludingInPlace) {
  Rng rng(29);
  nn::GroupNorm gn(2, 6, "ws.gn");
  const Tensor x4 = Tensor::Randn({2, 6, 5, 5}, rng);
  const Tensor gn_ref = gn.Forward(x4, /*training=*/false);
  Workspace ws;
  ExpectBytesEqual(gn_ref, gn.Forward(x4, &ws));
  Tensor gn_inplace = x4.Clone();
  ASSERT_TRUE(gn.ForwardInPlace(&gn_inplace));
  ExpectBytesEqual(gn_ref, gn_inplace);

  nn::LayerNorm ln(8, "ws.ln");
  const Tensor x3 = Tensor::Randn({4, 6, 8}, rng);
  const Tensor ln_ref = ln.Forward(x3, /*training=*/false);
  ExpectBytesEqual(ln_ref, ln.Forward(x3, &ws));
  Tensor ln_inplace = x3.Clone();
  ASSERT_TRUE(ln.ForwardInPlace(&ln_inplace));
  ExpectBytesEqual(ln_ref, ln_inplace);
}

TEST(WorkspaceNnTest, ActivationsMatchIncludingInPlace) {
  Rng rng(31);
  const Tensor x = Tensor::Randn({64}, rng);
  Workspace ws;

  nn::SiLU silu;
  const Tensor silu_ref = silu.Forward(x, /*training=*/false);
  ExpectBytesEqual(silu_ref, silu.Forward(x, &ws));
  Tensor silu_inplace = x.Clone();
  ASSERT_TRUE(silu.ForwardInPlace(&silu_inplace));
  ExpectBytesEqual(silu_ref, silu_inplace);

  nn::Tanh tanh_layer;
  const Tensor tanh_ref = tanh_layer.Forward(x, /*training=*/false);
  Tensor tanh_inplace = x.Clone();
  ASSERT_TRUE(tanh_layer.ForwardInPlace(&tanh_inplace));
  ExpectBytesEqual(tanh_ref, tanh_inplace);

  nn::FixedScale scale(2.5f);
  const Tensor scale_ref = scale.Forward(x, /*training=*/false);
  Tensor scale_inplace = x.Clone();
  ASSERT_TRUE(scale.ForwardInPlace(&scale_inplace));
  ExpectBytesEqual(scale_ref, scale_inplace);
}

TEST(WorkspaceNnTest, SequentialChainMatches) {
  Rng rng(37);
  nn::Sequential seq;
  seq.Emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng, "ws.seq.conv1");
  seq.Emplace<nn::SiLU>();
  seq.Emplace<nn::GroupNorm>(2, 4, "ws.seq.gn");
  seq.Emplace<nn::Conv2d>(4, 2, 3, 1, 1, rng, "ws.seq.conv2");
  const Tensor x = Tensor::Randn({2, 2, 8, 8}, rng);
  const Tensor ref = seq.Forward(x, /*training=*/false);
  Workspace ws;
  const Tensor got = seq.Forward(x, &ws);
  ExpectBytesEqual(ref, got);
  // The chain's in-place steps must never touch the caller's input.
  const Tensor x_again = x.Clone();
  ExpectBytesEqual(x_again, x);
}

// ---------------------------------------------------------------------------
// Diffusion stack byte identity + zero steady-state allocations.
// ---------------------------------------------------------------------------

diffusion::UNetConfig SmallUNetConfig() {
  diffusion::UNetConfig config;
  config.latent_channels = 4;
  config.model_channels = 8;
  config.heads = 2;
  config.seed = 41;
  return config;
}

TEST(WorkspaceDiffusionTest, UNetForwardMatches) {
  diffusion::SpaceTimeUNet unet(SmallUNetConfig());
  Rng rng(43);
  const Tensor y = Tensor::Randn({6, 4, 8, 8}, rng);
  const Tensor ref = unet.Forward(y, 17);
  unet.Backward(Tensor::Zeros(ref.shape()));  // clear the forward caches
  Workspace ws;
  const Tensor got = unet.Forward(y, 17, &ws);
  ExpectBytesEqual(ref, got);
}

TEST(WorkspaceDiffusionTest, SamplerByteIdenticalAndZeroSteadyStateAllocs) {
  diffusion::SpaceTimeUNet unet(SmallUNetConfig());
  const diffusion::NoiseSchedule schedule(diffusion::ScheduleKind::kLinear, 40);
  diffusion::SamplerConfig config;
  config.steps = 4;
  const std::vector<std::int64_t> key_idx = {0, 3, 6, 7};
  Rng data_rng(47);
  const Tensor keyframes = Tensor::Randn({4, 4, 8, 8}, data_rng);

  Rng rng_ref(123);
  const Tensor ref = diffusion::SampleConditional(&unet, schedule, config,
                                                  keyframes, key_idx, 8,
                                                  rng_ref);

  Workspace ws;
  {
    Workspace::Scope scope(&ws);
    Rng rng_ws(123);
    const Tensor got = diffusion::SampleConditional(&unet, schedule, config,
                                                    keyframes, key_idx, 8,
                                                    rng_ws, &ws);
    ExpectBytesEqual(ref, got);
  }

  // The first run grew the arena to its high-water mark; from now on the
  // sampler loop must be allocation-free, even at MORE steps per window
  // (per-step scopes rewind to the same bump state every step).
  const std::int64_t grown = ws.stats().slab_allocations;
  config.steps = 8;
  for (int round = 0; round < 2; ++round) {
    Workspace::Scope scope(&ws);
    Rng rng_ws(123);
    (void)diffusion::SampleConditional(&unet, schedule, config, keyframes,
                                       key_idx, 8, rng_ws, &ws);
  }
  EXPECT_EQ(ws.stats().slab_allocations, grown)
      << "steady-state sampler loop allocated new slabs";
}

// ---------------------------------------------------------------------------
// Full GLSC decode byte identity (untrained weights are fine: the pipeline is
// deterministic and the entropy coders are exact, so workspace-vs-allocating
// equality is meaningful without a training run).
// ---------------------------------------------------------------------------

core::GlscConfig SmallGlscConfig() {
  core::GlscConfig config;
  config.vae.latent_channels = 4;
  config.vae.hidden_channels = 6;
  config.vae.hyper_channels = 2;
  config.vae.seed = 3;
  config.unet.latent_channels = 4;
  config.unet.model_channels = 8;
  config.unet.heads = 2;
  config.unet.seed = 5;
  config.schedule_steps = 40;
  config.window = 8;
  config.interval = 3;
  config.sample_steps = 3;
  return config;
}

Tensor SmallWindow() {
  data::FieldSpec spec;
  spec.frames = 8;
  spec.height = 16;
  spec.width = 16;
  spec.seed = 99;
  Tensor field = data::GenerateClimate(spec);  // [1, 8, 16, 16]
  return field.Reshape({8, 16, 16});
}

TEST(WorkspaceGlscTest, DecompressByteIdenticalAndSteadyState) {
  core::GlscCompressor glsc(SmallGlscConfig());
  const Tensor window = SmallWindow();
  const core::CompressedWindow compressed = glsc.Compress(window, -1.0);

  const Tensor ref = glsc.Decompress(compressed);
  Workspace ws;
  const Tensor got = glsc.Decompress(compressed, 0, &ws);
  EXPECT_FALSE(got.borrowed());  // arena memory must not escape
  ExpectBytesEqual(ref, got);

  const std::int64_t grown = ws.stats().slab_allocations;
  for (int round = 0; round < 2; ++round) {
    const Tensor again = glsc.Decompress(compressed, 0, &ws);
    ExpectBytesEqual(ref, again);
  }
  EXPECT_EQ(ws.stats().slab_allocations, grown)
      << "steady-state decode allocated new slabs";
}

TEST(WorkspaceGlscTest, CompressByteIdentical) {
  core::GlscCompressor glsc(SmallGlscConfig());
  const Tensor window = SmallWindow();
  Tensor recon_ref, recon_ws;
  const core::CompressedWindow a =
      glsc.Compress(window, -1.0, 0, &recon_ref);
  Workspace ws;
  const core::CompressedWindow b =
      glsc.Compress(window, -1.0, 0, &recon_ws, &ws);
  EXPECT_EQ(a.keyframes.y_stream, b.keyframes.y_stream);
  EXPECT_EQ(a.keyframes.z_stream, b.keyframes.z_stream);
  EXPECT_EQ(a.sample_seed, b.sample_seed);
  ExpectBytesEqual(recon_ref, recon_ws);
}

TEST(WorkspaceApiTest, AdapterDecompressMatchesAcrossWorkspaces) {
  core::GlscCompressor glsc(SmallGlscConfig());
  auto codec = api::WrapGlsc(&glsc);
  const Tensor window = SmallWindow();
  const std::vector<data::FrameNorm> norms(8, data::FrameNorm{0.0f, 1.0f});
  const std::vector<std::uint8_t> payload =
      codec->CompressWindow(window, {}, norms);
  const Tensor ref = codec->DecompressWindow(payload);
  Workspace ws;
  ExpectBytesEqual(ref, codec->DecompressWindow(payload, &ws));
  // Rule-based codecs ignore the workspace (default passthrough).
  auto sz = api::Compressor::Create("sz");
  const std::vector<std::uint8_t> sz_payload =
      sz->CompressWindow(window, {api::ErrorBoundMode::kRelative, 0.01},
                         norms);
  ExpectBytesEqual(sz->DecompressWindow(sz_payload),
                   sz->DecompressWindow(sz_payload, &ws));
}

}  // namespace
}  // namespace glsc
