// Tests for the GLSC_DEBUG_LOCKS runtime lock-order checker (util/mutex.h +
// util/lock_checker.h). The violation tests are death tests: the checker's
// whole contract is "abort with both stacks instead of deadlocking". In
// trees compiled without the checker (release default) they skip — the
// CHECK_DEBUG lane in scripts/check.sh runs them for real.
#include <gtest/gtest.h>

#include <thread>

#include "util/mutex.h"

#if defined(GLSC_DEBUG_LOCKS) && GLSC_DEBUG_LOCKS
#include "util/lock_checker.h"
#define SKIP_WITHOUT_LOCK_CHECKER() (void)0
#else
#define SKIP_WITHOUT_LOCK_CHECKER() \
  GTEST_SKIP() << "built without GLSC_DEBUG_LOCKS; see CHECK_DEBUG=1 lane"
#endif

namespace glsc {
namespace {

// Death tests fork; `threadsafe` re-executes the binary so the forked child
// is single-threaded even though other tests here spawn threads.
class LockCheckerDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST(LockCheckerTest, HeldCountTracksLockScopes) {
  SKIP_WITHOUT_LOCK_CHECKER();
#if defined(GLSC_DEBUG_LOCKS) && GLSC_DEBUG_LOCKS
  Mutex a("test.held_count.a");
  Mutex b("test.held_count.b");
  EXPECT_EQ(lockcheck::HeldCount(), 0);
  {
    MutexLock la(a);
    EXPECT_EQ(lockcheck::HeldCount(), 1);
    {
      MutexLock lb(b);
      EXPECT_EQ(lockcheck::HeldCount(), 2);
    }
    EXPECT_EQ(lockcheck::HeldCount(), 1);
  }
  EXPECT_EQ(lockcheck::HeldCount(), 0);
#endif
}

TEST(LockCheckerTest, ConsistentOrderAcrossThreadsIsQuiet) {
  SKIP_WITHOUT_LOCK_CHECKER();
  // A -> B on two different threads: same order, no cycle, no report.
  Mutex a("test.consistent.a");
  Mutex b("test.consistent.b");
  auto lock_in_order = [&] {
    MutexLock la(a);
    MutexLock lb(b);
  };
  lock_in_order();
  std::thread other(lock_in_order);
  other.join();
}

TEST(LockCheckerTest, TryLockRecordsNoOrderingEdge) {
  SKIP_WITHOUT_LOCK_CHECKER();
  // try_lock cannot block, so holding A while try-locking B must NOT outlaw
  // the later B -> A order (the classic try-lock back-off pattern).
  Mutex a("test.trylock.a");
  Mutex b("test.trylock.b");
  {
    MutexLock la(a);
    ASSERT_TRUE(b.TryLock());
    b.Unlock();
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // would abort if the try-acquisition had made an edge
  }
}

TEST(LockCheckerTest, SchedulerRanksEncodeDocumentedOrder) {
  SKIP_WITHOUT_LOCK_CHECKER();
#if defined(GLSC_DEBUG_LOCKS) && GLSC_DEBUG_LOCKS
  // docs/HARDENING.md: DecodeScheduler worker_mu_[k] is taken BEFORE mu_.
  EXPECT_LT(lockrank::kDecodeWorkerSlot, lockrank::kDecodeScheduler);
#endif
}

TEST_F(LockCheckerDeathTest, LockOrderInversionAborts) {
  SKIP_WITHOUT_LOCK_CHECKER();
  EXPECT_DEATH(
      {
        Mutex a("test.inversion.a");
        Mutex b("test.inversion.b");
        {
          MutexLock la(a);
          MutexLock lb(b);  // records a -> b
        }
        {
          MutexLock lb(b);
          MutexLock la(a);  // b -> a closes the cycle: abort, not deadlock
        }
      },
      "lock-order inversion");
}

TEST_F(LockCheckerDeathTest, RankOrderViolationAborts) {
  SKIP_WITHOUT_LOCK_CHECKER();
  EXPECT_DEATH(
      {
        Mutex scheduler("test.rank.scheduler", 20);
        Mutex worker("test.rank.worker", 10);
        MutexLock ls(scheduler);
        // Acquiring rank 10 while holding rank 20 violates the strictly-
        // increasing rank discipline — caught on the FIRST bad acquisition,
        // no need to ever observe the opposite order.
        MutexLock lw(worker);
      },
      "RANK-ORDER VIOLATION");
}

TEST_F(LockCheckerDeathTest, SelfDeadlockAborts) {
  SKIP_WITHOUT_LOCK_CHECKER();
  EXPECT_DEATH(
      {
        Mutex a("test.self.a");
        a.Lock();
        a.Lock();  // would block forever on std::mutex; the checker aborts
      },
      "SELF-DEADLOCK");
}

TEST_F(LockCheckerDeathTest, ReleaseOfUnheldMutexAborts) {
  SKIP_WITHOUT_LOCK_CHECKER();
  EXPECT_DEATH(
      {
        Mutex a("test.unheld.a");
        a.Unlock();  // UB on std::mutex; the checker turns it into a report
      },
      "RELEASE OF A MUTEX NOT HELD");
}

}  // namespace
}  // namespace glsc
