// Property tests for the PCA error-bound module: the guarantee must hold for
// every (field, reconstruction, tau) combination thrown at it.
#include <gtest/gtest.h>

#include <cmath>

#include "postprocess/residual_pca.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace glsc::postprocess {
namespace {

// Builds a fitted PCA from smooth synthetic residuals.
ResidualPca MakeFittedPca(Rng& rng, std::int64_t block = 8,
                          std::int64_t frames = 6, std::int64_t edge = 32) {
  PcaConfig config;
  config.block = block;
  ResidualPca pca(config);
  std::vector<Tensor> residuals;
  for (std::int64_t f = 0; f < frames; ++f) {
    Tensor r({edge, edge});
    // Smooth residual structure + small noise, roughly what a learned
    // compressor leaves behind.
    const double ky = 2.0 * 3.14159265 * (1 + rng.UniformInt(3)) / edge;
    const double kx = 2.0 * 3.14159265 * (1 + rng.UniformInt(3)) / edge;
    for (std::int64_t i = 0; i < edge; ++i) {
      for (std::int64_t j = 0; j < edge; ++j) {
        r.At({i, j}) = static_cast<float>(0.1 * std::sin(ky * i + kx * j) +
                                          0.01 * rng.Normal());
      }
    }
    residuals.push_back(std::move(r));
  }
  pca.Fit(residuals);
  return pca;
}

class BoundSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BoundSweepTest, GuaranteeHolds) {
  const double tau = GetParam();
  Rng rng(11);
  ResidualPca pca = MakeFittedPca(rng);

  Tensor original({32, 32});
  Tensor recon({32, 32});
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    original[i] = 0.5f * rng.NormalF();
    recon[i] = original[i] + 0.08f * rng.NormalF();
  }

  const auto correction = pca.Correct(original, &recon, tau);
  const double err = std::sqrt(SumSquares(Sub(original, recon)));
  EXPECT_LE(err, tau * (1.0 + 1e-4) + 1e-12)
      << "tau=" << tau << " coeffs=" << correction.coefficients;
  EXPECT_LE(correction.l2_after, correction.l2_before + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Taus, BoundSweepTest,
                         ::testing::Values(3.0, 1.0, 0.3, 0.1, 0.03, 0.01,
                                           0.003));

TEST(ResidualPca, TighterBoundCostsMoreBytes) {
  Rng rng(13);
  ResidualPca pca = MakeFittedPca(rng);
  Tensor original({32, 32});
  Tensor base({32, 32});
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    original[i] = rng.NormalF();
    base[i] = original[i] + 0.1f * rng.NormalF();
  }
  Tensor loose_rec = base.Clone();
  Tensor tight_rec = base.Clone();
  const auto loose = pca.Correct(original, &loose_rec, 1.0);
  const auto tight = pca.Correct(original, &tight_rec, 0.05);
  EXPECT_LT(loose.payload.size(), tight.payload.size());
  EXPECT_LE(loose.coefficients, tight.coefficients);
}

TEST(ResidualPca, ApplyMatchesEncoderSideResult) {
  Rng rng(17);
  ResidualPca pca = MakeFittedPca(rng);
  Tensor original({32, 32});
  Tensor recon({32, 32});
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    original[i] = rng.NormalF();
    recon[i] = original[i] + 0.05f * rng.NormalF();
  }
  Tensor decoder_side = recon.Clone();
  const auto correction = pca.Correct(original, &recon, 0.1);
  pca.Apply(correction.payload, &decoder_side);
  for (std::int64_t i = 0; i < recon.numel(); ++i) {
    ASSERT_EQ(decoder_side[i], recon[i]) << "decoder divergence at " << i;
  }
}

TEST(ResidualPca, LooseBoundNeedsNoCoefficients) {
  Rng rng(19);
  ResidualPca pca = MakeFittedPca(rng);
  Tensor original({32, 32});
  Tensor recon({32, 32});
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    original[i] = rng.NormalF();
    recon[i] = original[i] + 0.001f * rng.NormalF();
  }
  const auto correction = pca.Correct(original, &recon, 10.0);
  EXPECT_EQ(correction.coefficients, 0);
  EXPECT_LT(correction.payload.size(), 64u);
}

TEST(ResidualPca, SaveLoadRoundTrip) {
  Rng rng(23);
  ResidualPca pca = MakeFittedPca(rng);
  ByteWriter out;
  pca.Save(&out);

  ResidualPca loaded;
  ByteReader in(out.bytes());
  loaded.Load(&in);
  EXPECT_TRUE(loaded.fitted());

  // Same correction payload from both instances.
  Tensor original({32, 32});
  Tensor rec_a({32, 32});
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    original[i] = rng.NormalF();
    rec_a[i] = original[i] + 0.05f * rng.NormalF();
  }
  Tensor rec_b = rec_a.Clone();
  const auto ca = pca.Correct(original, &rec_a, 0.2);
  const auto cb = loaded.Correct(original, &rec_b, 0.2);
  EXPECT_EQ(ca.payload, cb.payload);
}

TEST(ResidualPca, BasisIsOrthonormal) {
  Rng rng(29);
  ResidualPca pca = MakeFittedPca(rng, /*block=*/4);
  ByteWriter out;
  pca.Save(&out);
  ByteReader in(out.bytes());
  const auto block = static_cast<std::int64_t>(in.GetVarU64());
  const auto n_entries = in.GetVarU64();
  const std::int64_t d = block * block;
  ASSERT_EQ(n_entries, static_cast<std::uint64_t>(d * d));
  std::vector<double> basis(n_entries);
  for (auto& v : basis) v = in.GetF64();
  // U^T U == I.
  for (std::int64_t a = 0; a < d; ++a) {
    for (std::int64_t b = 0; b < d; ++b) {
      double dot = 0.0;
      for (std::int64_t r = 0; r < d; ++r) {
        dot += basis[r * d + a] * basis[r * d + b];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(ResidualPca, UnfittedCorrectThrows) {
  ResidualPca pca;
  Tensor a({8, 8}), b({8, 8});
  EXPECT_THROW(pca.Correct(a, &b, 0.1), std::runtime_error);
}

TEST(ResidualPca, NonPositiveTauRejected) {
  Rng rng(31);
  ResidualPca pca = MakeFittedPca(rng);
  Tensor a({32, 32}), b({32, 32});
  EXPECT_THROW(pca.Correct(a, &b, 0.0), std::runtime_error);
}

}  // namespace
}  // namespace glsc::postprocess
