// Tests for the container v4 lossless filter pipeline (core/filters.h).
//
// The filter kernels are the container's bit-exactness boundary: archives
// written on any host must be byte-identical, so every dispatch level the
// host supports is exercised in-process via ScopedIsaOverride and compared
// against (a) naive references implementing the documented layout and (b) the
// forced-scalar output byte for byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/archive_reader.h"
#include "core/filters.h"
#include "tensor/simd/dispatch.h"
#include "tensor/simd/kernels.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace glsc::core {
namespace {

std::vector<simd::IsaLevel> TestableLevels() {
  std::vector<simd::IsaLevel> levels{simd::IsaLevel::kScalar};
  const simd::IsaLevel max = simd::DetectedIsa();
  if (max >= simd::IsaLevel::kSSE2) levels.push_back(simd::IsaLevel::kSSE2);
  if (max >= simd::IsaLevel::kAVX2) levels.push_back(simd::IsaLevel::kAVX2);
  if (max >= simd::IsaLevel::kAVX512) {
    levels.push_back(simd::IsaLevel::kAVX512);
  }
  return levels;
}

std::vector<std::uint8_t> RandomBytes(Rng* rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng->UniformInt(256));
  return v;
}

// Smooth f32 series — the shape of the norms block, where bitshuffle at
// elem = 4 exposes long runs of identical exponent/high-mantissa bit planes.
std::vector<std::uint8_t> SmoothFloats(std::size_t count) {
  std::vector<std::uint8_t> v(count * sizeof(float));
  for (std::size_t i = 0; i < count; ++i) {
    const float f = 1.0f + 0.001f * static_cast<float>(i % 257);
    std::memcpy(v.data() + i * sizeof(float), &f, sizeof f);
  }
  return v;
}

// Naive implementation of the documented bitshuffle layout: elements split
// into byte planes, each byte plane into 8 bit planes; bit t of
// dst[(k*8 + b)*stride + j] is bit b of byte k of element 8j + t.
std::vector<std::uint8_t> NaiveBitshuffle(const std::vector<std::uint8_t>& src,
                                          std::int64_t elem) {
  const std::size_t n = src.size();
  const std::size_t nelem_p =
      (n / static_cast<std::size_t>(elem)) & ~std::size_t{7};
  const std::size_t prefix = nelem_p * static_cast<std::size_t>(elem);
  const std::size_t stride = nelem_p / 8;
  std::vector<std::uint8_t> out(n, 0);
  for (std::size_t k = 0; k < static_cast<std::size_t>(elem); ++k) {
    for (std::size_t b = 0; b < 8; ++b) {
      for (std::size_t j = 0; j < stride; ++j) {
        std::uint8_t v = 0;
        for (std::size_t t = 0; t < 8; ++t) {
          const std::uint8_t byte =
              src[(8 * j + t) * static_cast<std::size_t>(elem) + k];
          v = static_cast<std::uint8_t>(v | (((byte >> b) & 1u) << t));
        }
        out[(k * 8 + b) * stride + j] = v;
      }
    }
  }
  std::memcpy(out.data() + prefix, src.data() + prefix, n - prefix);
  return out;
}

std::vector<std::uint8_t> NaiveDelta(const std::vector<std::uint8_t>& src,
                                     std::int64_t lag) {
  std::vector<std::uint8_t> out(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    out[i] = i < static_cast<std::size_t>(lag)
                 ? src[i]
                 : static_cast<std::uint8_t>(
                       src[i] - src[i - static_cast<std::size_t>(lag)]);
  }
  return out;
}

TEST(Filters, BitshuffleMatchesNaiveLayoutAtEveryLevel) {
  Rng rng(41);
  for (const std::size_t n : {0ul, 7ul, 8ul, 64ul, 65ul, 333ul, 4096ul,
                              5000ul}) {
    const std::vector<std::uint8_t> src = RandomBytes(&rng, n);
    for (const std::int64_t elem : {1, 2, 4, 8}) {
      const std::vector<std::uint8_t> want = NaiveBitshuffle(src, elem);
      const FilterSpec spec{FilterChain::kBitshuffle, elem,
                            FilterBackend::kNone};
      for (const simd::IsaLevel level : TestableLevels()) {
        simd::ScopedIsaOverride override_level(level);
        EXPECT_EQ(EncodeFiltered(src.data(), n, spec), want)
            << "n=" << n << " elem=" << elem << " level=" << (int)level;
      }
    }
  }
}

TEST(Filters, DeltaMatchesNaiveAtEveryLevel) {
  Rng rng(42);
  for (const std::size_t n : {0ul, 3ul, 16ul, 31ul, 32ul, 257ul, 8191ul}) {
    const std::vector<std::uint8_t> src = RandomBytes(&rng, n);
    for (const std::int64_t lag : {1, 2, 4, 8}) {
      const std::vector<std::uint8_t> want = NaiveDelta(src, lag);
      const FilterSpec spec{FilterChain::kDelta, lag, FilterBackend::kNone};
      for (const simd::IsaLevel level : TestableLevels()) {
        simd::ScopedIsaOverride override_level(level);
        EXPECT_EQ(EncodeFiltered(src.data(), n, spec), want)
            << "n=" << n << " lag=" << lag << " level=" << (int)level;
      }
    }
  }
}

TEST(Filters, EveryChainRoundTripsAtEveryLevelBitIdenticalToScalar) {
  Rng rng(43);
  const FilterChain chains[] = {FilterChain::kNone, FilterChain::kDelta,
                                FilterChain::kBitshuffle,
                                FilterChain::kDeltaBitshuffle};
  const FilterBackend backends[] = {FilterBackend::kNone, FilterBackend::kGlz};
  for (const std::size_t n : {0ul, 129ul, 4096ul, 10000ul}) {
    // Mix of structure and noise so glz has something to chew on.
    std::vector<std::uint8_t> src = RandomBytes(&rng, n);
    for (std::size_t i = 0; i + 4 <= n; i += 4) src[i] = 0x40;
    for (const FilterChain chain : chains) {
      for (const FilterBackend backend : backends) {
        for (const std::int64_t elem :
             chain == FilterChain::kNone ? std::vector<std::int64_t>{1}
                                         : std::vector<std::int64_t>{1, 4}) {
          const FilterSpec spec{chain, elem, backend};
          std::vector<std::uint8_t> scalar_stored;
          {
            simd::ScopedIsaOverride force(simd::IsaLevel::kScalar);
            scalar_stored = EncodeFiltered(src.data(), n, spec);
          }
          for (const simd::IsaLevel level : TestableLevels()) {
            simd::ScopedIsaOverride override_level(level);
            // Encode is byte-identical to forced scalar...
            const std::vector<std::uint8_t> stored =
                EncodeFiltered(src.data(), n, spec);
            EXPECT_EQ(stored, scalar_stored)
                << "chain=" << (int)chain << " backend=" << (int)backend
                << " elem=" << elem << " level=" << (int)level;
            // ...and decode restores the input exactly.
            std::vector<std::uint8_t> back(n);
            DecodeFiltered(stored.data(), stored.size(), spec, back.data(), n,
                           nullptr);
            EXPECT_EQ(back, src);
          }
        }
      }
    }
  }
}

TEST(Filters, GlzRoundTripsAssortedInputs) {
  Rng rng(44);
  std::vector<std::vector<std::uint8_t>> inputs;
  inputs.push_back({});                                  // empty
  inputs.push_back({1, 2, 3});                           // below match margin
  inputs.push_back(std::vector<std::uint8_t>(5000, 7));  // one long run
  inputs.push_back(RandomBytes(&rng, 4096));             // incompressible
  inputs.push_back(SmoothFloats(2048));                  // structured
  {
    // Repeating 5-byte period: overlapping matches (offset < length).
    std::vector<std::uint8_t> v(1000);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<std::uint8_t>(i % 5);
    }
    inputs.push_back(std::move(v));
  }
  for (const auto& src : inputs) {
    const std::vector<std::uint8_t> stored =
        GlzCompress(src.data(), src.size());
    std::vector<std::uint8_t> back(src.size());
    GlzDecompress(stored.data(), stored.size(), back.data(), back.size());
    EXPECT_EQ(back, src);
  }
  // The run actually compresses; the noise does not explode.
  EXPECT_LT(GlzCompress(inputs[2].data(), inputs[2].size()).size(), 100u);
}

TEST(Filters, SelectionShrinksStructuredDataAndStoresNoiseRaw) {
  Rng rng(45);
  const std::vector<std::uint8_t> noise = RandomBytes(&rng, 8192);
  const FilteredBlock raw = EncodeWithSelection(noise.data(), noise.size(), 1);
  EXPECT_TRUE(raw.spec.IsRaw());
  EXPECT_EQ(raw.stored, noise);  // honest raw storage, no expansion

  const std::vector<std::uint8_t> smooth = SmoothFloats(4096);
  const FilteredBlock f = EncodeWithSelection(smooth.data(), smooth.size(), 4);
  EXPECT_FALSE(f.spec.IsRaw());
  EXPECT_LT(f.stored.size(), smooth.size() / 2);
  std::vector<std::uint8_t> back(smooth.size());
  DecodeFiltered(f.stored.data(), f.stored.size(), f.spec, back.data(),
                 back.size(), nullptr);
  EXPECT_EQ(back, smooth);

  // Selection is deterministic in the input bytes (append == one-shot).
  const FilteredBlock again =
      EncodeWithSelection(smooth.data(), smooth.size(), 4);
  EXPECT_EQ(again.spec, f.spec);
  EXPECT_EQ(again.stored, f.stored);
}

TEST(Filters, DecodeWithWorkspaceMatchesHeapDecode) {
  const std::vector<std::uint8_t> smooth = SmoothFloats(4096);
  const FilterSpec spec{FilterChain::kDeltaBitshuffle, 4, FilterBackend::kGlz};
  const std::vector<std::uint8_t> stored =
      EncodeFiltered(smooth.data(), smooth.size(), spec);
  std::vector<std::uint8_t> heap_out(smooth.size());
  DecodeFiltered(stored.data(), stored.size(), spec, heap_out.data(),
                 heap_out.size(), nullptr);

  tensor::Workspace ws;
  std::vector<std::uint8_t> ws_out(smooth.size());
  {
    tensor::Workspace::Scope scope(&ws);
    DecodeFiltered(stored.data(), stored.size(), spec, ws_out.data(),
                   ws_out.size(), &ws);
  }
  EXPECT_EQ(ws_out, heap_out);
  EXPECT_EQ(ws_out, smooth);

  // Steady state: re-decoding under a warm workspace must not grow slabs.
  const auto slabs = ws.stats().slab_allocations;
  for (int i = 0; i < 16; ++i) {
    tensor::Workspace::Scope scope(&ws);
    DecodeFiltered(stored.data(), stored.size(), spec, ws_out.data(),
                   ws_out.size(), &ws);
  }
  EXPECT_EQ(ws.stats().slab_allocations, slabs);
}

TEST(Filters, WireSpecRejectsLies) {
  // Reserved bits, bad element size, element size on an empty chain, unknown
  // backend — each is the "lying filter id" fuzz case and must throw typed.
  EXPECT_THROW(FilterSpec::FromWire(0x04, 0), ArchiveError);  // reserved bit
  EXPECT_THROW(FilterSpec::FromWire(0x80, 0), ArchiveError);  // reserved bit
  EXPECT_THROW(FilterSpec::FromWire(0x41, 0), ArchiveError);  // elem = 16
  EXPECT_THROW(FilterSpec::FromWire(0x10, 0), ArchiveError);  // elem on none
  EXPECT_THROW(FilterSpec::FromWire(0x01, 2), ArchiveError);  // backend
  // Valid specs round-trip through the wire bytes.
  for (const FilterChain chain :
       {FilterChain::kDelta, FilterChain::kBitshuffle}) {
    for (const std::int64_t elem : {1, 2, 4, 8}) {
      const FilterSpec spec{chain, elem, FilterBackend::kGlz};
      EXPECT_EQ(FilterSpec::FromWire(spec.WireFilter(), spec.WireBackend()),
                spec);
    }
  }
}

TEST(Filters, ValidateFilteredSizesBoundsHostileRawSizes) {
  const FilterSpec raw{FilterChain::kNone, 1, FilterBackend::kNone};
  EXPECT_NO_THROW(ValidateFilteredSizes(raw, 100, 100));
  EXPECT_THROW(ValidateFilteredSizes(raw, 100, 101), ArchiveError);
  const FilterSpec glz{FilterChain::kNone, 1, FilterBackend::kGlz};
  EXPECT_NO_THROW(ValidateFilteredSizes(glz, 100, 25564));
  // A lying raw_size cannot force an allocation unbounded by the input.
  EXPECT_THROW(ValidateFilteredSizes(glz, 100, 26000), ArchiveError);
  EXPECT_THROW(ValidateFilteredSizes(glz, 100, 1ull << 40), ArchiveError);
}

TEST(Filters, GlzDecompressRejectsMalformedStreams) {
  const auto expect_corrupt = [](std::vector<std::uint8_t> stream,
                                 std::size_t dst_n) {
    std::vector<std::uint8_t> dst(dst_n);
    try {
      GlzDecompress(stream.data(), stream.size(), dst.data(), dst_n);
      FAIL() << "malformed glz stream decoded";
    } catch (const ArchiveError& e) {
      EXPECT_EQ(e.fault(), ArchiveFault::kCorruptRecord);
    }
  };
  // Literal run longer than the remaining input.
  expect_corrupt({0x50, 'a', 'b'}, 5);
  // Literal run longer than the declared output.
  expect_corrupt({0x30, 'a', 'b', 'c'}, 2);
  // Truncated extended literal length.
  expect_corrupt({0xF0, 255}, 400);
  // Match offset zero.
  expect_corrupt({0x10, 'a', 0x00, 0x00}, 6);
  // Match offset pointing before the start of the output.
  expect_corrupt({0x10, 'a', 0x05, 0x00}, 6);
  // Match length overrunning the declared output.
  expect_corrupt({0x1F, 'a', 0x01, 0x00, 200}, 8);
  // Stream ends before the match offset completes.
  expect_corrupt({0x10, 'a', 0x01}, 6);
  // Decodes fewer bytes than declared.
  expect_corrupt({0x20, 'a', 'b'}, 10);
}

}  // namespace
}  // namespace glsc::core
