// End-to-end tests of the GLSC pipeline: keyframe coding, diffusion
// interpolation, error-bound postprocessing, byte accounting, determinism and
// the artifact registry.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/glsc_compressor.h"
#include "core/registry.h"
#include "util/timer.h"
#include "tensor/metrics.h"
#include "tensor/ops.h"

namespace glsc::core {
namespace {

GlscConfig TinyConfig() {
  GlscConfig config;
  config.vae.latent_channels = 4;
  config.vae.hidden_channels = 6;
  config.vae.hyper_channels = 2;
  config.vae.seed = 3;
  config.unet.latent_channels = 4;
  config.unet.model_channels = 8;
  config.unet.heads = 2;
  config.unet.seed = 5;
  config.schedule_steps = 40;
  config.window = 8;
  config.interval = 3;
  config.sample_steps = 6;
  return config;
}

TrainBudget TinyBudget() {
  TrainBudget budget;
  budget.vae.iterations = 450;
  budget.vae.batch_size = 4;
  budget.vae.crop = 16;
  budget.vae.log_every = 0;
  budget.vae.lambda_double_at = 225;
  budget.vae.lr_decay_every = 0;
  budget.diffusion.iterations = 250;
  budget.diffusion.crop = 16;
  budget.diffusion.log_every = 0;
  budget.pca_fit_windows = 2;
  return budget;
}

data::SequenceDataset TinyDataset(std::uint64_t seed = 7) {
  data::FieldSpec spec;
  spec.frames = 32;
  spec.height = 16;
  spec.width = 16;
  spec.seed = seed;
  return data::SequenceDataset(data::GenerateClimate(spec));
}

class GlscEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::SequenceDataset(TinyDataset());
    compressor_ = GetOrTrainGlsc(*dataset_, TinyConfig(), TinyBudget(),
                                 "/tmp/glsc_test_artifacts", "core_test_tiny_v2")
                      .release();
  }
  static void TearDownTestSuite() {
    delete compressor_;
    delete dataset_;
    std::filesystem::remove_all("/tmp/glsc_test_artifacts");
  }

  static data::SequenceDataset* dataset_;
  static GlscCompressor* compressor_;
};

data::SequenceDataset* GlscEndToEnd::dataset_ = nullptr;
GlscCompressor* GlscEndToEnd::compressor_ = nullptr;

TEST_F(GlscEndToEnd, KeyframeIndicesMatchConfig) {
  EXPECT_EQ(compressor_->keyframe_indices(),
            (std::vector<std::int64_t>{0, 3, 6, 7}));
  EXPECT_EQ(compressor_->generated_indices().size(), 4u);
}

TEST_F(GlscEndToEnd, CompressDecompressRoundTrip) {
  const Tensor window = dataset_->NormalizedWindow(0, 0, 8);
  const CompressedWindow compressed = compressor_->Compress(window, -1.0);
  EXPECT_GT(compressed.LatentBytes(), 0u);
  EXPECT_EQ(compressed.CorrectionBytes(), 0u);

  const Tensor recon = compressor_->Decompress(compressed);
  ASSERT_EQ(recon.shape(), window.shape());
  EXPECT_TRUE(recon.AllFinite());
  // Sanity bound only: at this suite's seconds-scale training budget the
  // uncorrected reconstruction hovers around the zero-predictor MSE, so a
  // strict "beats zero" assertion is flaky. The real quality property (and
  // keyframes-beat-generated) is asserted in integration_test at a budget
  // where it holds with margin.
  EXPECT_LT(MeanSquaredError(window, recon),
            2.0 * MeanSquaredError(window, Tensor::Zeros(window.shape())));
}

TEST_F(GlscEndToEnd, DecompressionIsDeterministic) {
  const Tensor window = dataset_->NormalizedWindow(0, 8, 8);
  const CompressedWindow compressed = compressor_->Compress(window, -1.0);
  const Tensor a = compressor_->Decompress(compressed);
  const Tensor b = compressor_->Decompress(compressed);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "decoder must be bit-reproducible";
  }
}

TEST_F(GlscEndToEnd, ErrorBoundGuaranteeHolds) {
  const Tensor window = dataset_->NormalizedWindow(0, 16, 8);
  const std::int64_t hw = window.dim(1) * window.dim(2);
  for (const double tau : {0.5, 0.2, 0.05}) {
    const CompressedWindow compressed = compressor_->Compress(window, tau);
    const Tensor recon = compressor_->Decompress(compressed);
    for (std::int64_t f = 0; f < window.dim(0); ++f) {
      double l2 = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double d = window[f * hw + i] - recon[f * hw + i];
        l2 += d * d;
      }
      EXPECT_LE(std::sqrt(l2), tau * (1.0 + 1e-4) + 1e-12)
          << "frame " << f << " tau " << tau;
    }
  }
}

TEST_F(GlscEndToEnd, TighterBoundMoreCorrectionBytes) {
  const Tensor window = dataset_->NormalizedWindow(0, 0, 8);
  const auto loose = compressor_->Compress(window, 0.5);
  const auto tight = compressor_->Compress(window, 0.02);
  EXPECT_LE(loose.CorrectionBytes(), tight.CorrectionBytes());
}

TEST_F(GlscEndToEnd, OnlyKeyframesAreCoded) {
  // The latent stream holds exactly |C| frames, not N — the core storage
  // saving of the method.
  const Tensor window = dataset_->NormalizedWindow(0, 0, 8);
  const CompressedWindow compressed = compressor_->Compress(window, -1.0);
  EXPECT_EQ(compressed.keyframes.y_shape[0],
            static_cast<std::int64_t>(compressor_->keyframe_indices().size()));
}

TEST_F(GlscEndToEnd, FewerSampleStepsStillFinite) {
  const Tensor window = dataset_->NormalizedWindow(0, 0, 8);
  for (const std::int64_t steps : {1, 2, 4}) {
    const CompressedWindow compressed =
        compressor_->Compress(window, -1.0, steps);
    const Tensor recon = compressor_->Decompress(compressed, steps);
    EXPECT_TRUE(recon.AllFinite()) << steps;
  }
}

TEST_F(GlscEndToEnd, CodedPathEqualsDirectPath) {
  // Entropy coding is lossless, so decompressing the coded bitstream must
  // reproduce exactly what Reconstruct() computes from in-memory quantized
  // latents with the same sampling seed.
  const Tensor window = dataset_->NormalizedWindow(0, 8, 8);
  const CompressedWindow compressed = compressor_->Compress(window, -1.0);
  const Tensor via_codec = compressor_->Decompress(compressed);
  const Tensor direct =
      compressor_->Reconstruct(window, compressed.sample_seed);
  ASSERT_EQ(via_codec.shape(), direct.shape());
  for (std::int64_t i = 0; i < via_codec.numel(); ++i) {
    ASSERT_EQ(via_codec[i], direct[i]) << "coding changed the result at " << i;
  }
}

TEST_F(GlscEndToEnd, SaveLoadIdenticalReconstruction) {
  ByteWriter out;
  compressor_->Save(&out);
  GlscCompressor loaded(TinyConfig());
  ByteReader in(out.bytes());
  loaded.Load(&in);

  const Tensor window = dataset_->NormalizedWindow(0, 24, 8);
  const auto ca = compressor_->Compress(window, 0.1);
  const auto cb = loaded.Compress(window, 0.1);
  const Tensor ra = compressor_->Decompress(ca);
  const Tensor rb = loaded.Decompress(cb);
  for (std::int64_t i = 0; i < ra.numel(); ++i) ASSERT_EQ(ra[i], rb[i]);
}

TEST_F(GlscEndToEnd, RegistryCacheHitSkipsTraining) {
  // Second call with the same tag must load the artifact (fast path).
  Timer timer;
  auto again = GetOrTrainGlsc(*dataset_, TinyConfig(), TinyBudget(),
                              "/tmp/glsc_test_artifacts", "core_test_tiny_v2");
  EXPECT_LT(timer.Seconds(), 5.0) << "cache load should be near-instant";
  const Tensor window = dataset_->NormalizedWindow(0, 0, 8);
  const Tensor ra = compressor_->Decompress(compressor_->Compress(window, -1.0));
  const Tensor rb = again->Decompress(again->Compress(window, -1.0));
  for (std::int64_t i = 0; i < ra.numel(); ++i) ASSERT_EQ(ra[i], rb[i]);
}

TEST(GlscCompressor, ByteAccountingConsistent) {
  CompressedWindow w;
  w.window_shape = {8, 16, 16};
  w.keyframes.y_stream = std::vector<std::uint8_t>(100);
  w.keyframes.z_stream = std::vector<std::uint8_t>(20);
  w.corrections = {{1, 2, 3}, {}, {4, 5}};
  EXPECT_EQ(w.LatentBytes(), 120u);
  EXPECT_EQ(w.CorrectionBytes(), 5u);
  EXPECT_EQ(w.TotalBytes(), 120u + 5u + w.HeaderBytes());
  EXPECT_EQ(w.HeaderBytes(), 4u + 12u + 8u * 8u);
}

TEST(GlscCompressor, MismatchedWindowSizeRejected) {
  GlscConfig config = TinyConfig();
  GlscCompressor compressor(config);
  Rng rng(3);
  Tensor wrong = Tensor::Randn({5, 16, 16}, rng);  // config expects 8
  EXPECT_THROW(compressor.Compress(wrong, -1.0), std::runtime_error);
}

TEST(GlscCompressor, StrategyVariantsConstruct) {
  for (const auto strategy : {diffusion::KeyframeStrategy::kInterpolation,
                              diffusion::KeyframeStrategy::kPrediction,
                              diffusion::KeyframeStrategy::kMixed}) {
    GlscConfig config = TinyConfig();
    config.strategy = strategy;
    GlscCompressor compressor(config);
    EXPECT_FALSE(compressor.keyframe_indices().empty());
    EXPECT_FALSE(compressor.generated_indices().empty());
  }
}

}  // namespace
}  // namespace glsc::core
