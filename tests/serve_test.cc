// Tests for random-access archive reading (container v3 footer index,
// core::ArchiveReader) and the parallel decode scheduler (serve/): index
// round-trips, v1/v2 archives served through the same reader, byte-identity
// of scheduler output against DecodeSession::DecodeAll for any worker count,
// LRU eviction, truncated-footer rejection, and — via a counting codec — the
// guarantee that fetching one window decodes exactly one record and reads
// only that record's payload bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>

#include "api/session.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "data/field_generators.h"
#include "serve/decode_scheduler.h"
#include "util/rng.h"

namespace glsc::serve {
namespace {

// Counts DecompressWindow calls across a codec and all its clones, so tests
// can assert exactly how many records a query decoded. Deliberately does NOT
// override DecompressWindows: the batched dispatch falls back to the base
// per-window loop, so every decoded record is counted under either dispatch.
// An optional per-decode delay widens race windows for concurrency tests.
class CountingCodec final : public api::Compressor {
 public:
  CountingCodec(std::unique_ptr<api::Compressor> inner,
                std::shared_ptr<std::atomic<int>> calls, int delay_ms = 0)
      : inner_(std::move(inner)), calls_(std::move(calls)),
        delay_ms_(delay_ms) {}

  std::string name() const override { return inner_->name(); }
  api::Capabilities capabilities() const override {
    return inner_->capabilities();
  }
  std::int64_t window() const override { return inner_->window(); }
  std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const api::ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms) override {
    return inner_->CompressWindow(window, bound, norms);
  }
  Tensor DecompressWindow(const std::vector<std::uint8_t>& payload) override {
    calls_->fetch_add(1);
    if (delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    }
    return inner_->DecompressWindow(payload);
  }
  std::unique_ptr<api::Compressor> Clone() override {
    return std::make_unique<CountingCodec>(inner_->Clone(), calls_, delay_ms_);
  }

 private:
  std::unique_ptr<api::Compressor> inner_;
  std::shared_ptr<std::atomic<int>> calls_;
  int delay_ms_ = 0;
};

// [2, 40, 32, 32] with window 16: per variable, full records at t0 = 0 and 16
// plus an 8-frame padded tail at t0 = 32.
core::DatasetArchive EncodeSzArchive(const Tensor& field) {
  auto codec = api::Compressor::Create("sz");
  api::SessionOptions options;
  options.bound = {api::ErrorBoundMode::kRelative, 0.01};
  api::EncodeSession session(codec.get(), field.dim(0), field.dim(2),
                             field.dim(3), options);
  session.Push(field);
  return session.Finish();
}

Tensor MakeField(std::uint64_t seed = 111, std::int64_t variables = 2) {
  data::FieldSpec spec;
  spec.variables = variables;
  spec.frames = 40;
  spec.height = 32;
  spec.width = 32;
  spec.seed = seed;
  return data::GenerateClimate(spec);
}

// Writes `archive` in the v2 wire format (no index/footer) to exercise the
// scan-built index path. `skip_entry` (an entries() index) drops that record
// from the stream, producing an archive with a coverage hole.
std::vector<std::uint8_t> SerializeAsV2(
    const core::DatasetArchive& archive,
    std::size_t skip_entry = static_cast<std::size_t>(-1)) {
  ByteWriter out;
  out.PutBytes("GLSC", 4);
  out.PutU8(2);
  out.PutString(archive.codec());
  for (const auto d : archive.dataset_shape()) {
    out.PutU64(static_cast<std::uint64_t>(d));
  }
  out.PutU64(static_cast<std::uint64_t>(archive.window()));
  for (std::int64_t v = 0; v < archive.dataset_shape()[0]; ++v) {
    for (std::int64_t t = 0; t < archive.dataset_shape()[1]; ++t) {
      out.PutF32(archive.norm(v, t).mean);
      out.PutF32(archive.norm(v, t).range);
    }
  }
  const bool skipping = skip_entry < archive.entries().size();
  out.PutVarU64(archive.entries().size() - (skipping ? 1 : 0));
  for (std::size_t i = 0; i < archive.entries().size(); ++i) {
    if (i == skip_entry) continue;
    const auto& entry = archive.entries()[i];
    out.PutVarU64(static_cast<std::uint64_t>(entry.variable));
    out.PutVarU64(static_cast<std::uint64_t>(entry.t0));
    out.PutVarU64(static_cast<std::uint64_t>(entry.valid_frames));
    out.PutVarU64(entry.payload.size());
    out.PutBytes(entry.payload.data(), entry.payload.size());
  }
  return out.Release();
}

TEST(ArchiveReader, V3IndexRoundTrip) {
  const Tensor field = MakeField();
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto bytes = archive.Serialize({.version = 3});

  const auto reader = core::ArchiveReader::FromBytes(bytes);
  EXPECT_EQ(reader.codec(), "sz");
  EXPECT_EQ(reader.dataset_shape(), archive.dataset_shape());
  EXPECT_EQ(reader.window(), archive.window());
  ASSERT_EQ(reader.records().size(), archive.entries().size());
  for (std::size_t i = 0; i < reader.records().size(); ++i) {
    const auto& ref = reader.records()[i];
    const auto& entry = archive.entries()[i];
    EXPECT_EQ(ref.variable, entry.variable);
    EXPECT_EQ(ref.t0, entry.t0);
    EXPECT_EQ(ref.valid_frames, entry.valid_frames);
    EXPECT_EQ(ref.length, entry.payload.size());
    EXPECT_EQ(reader.ReadPayload(i), entry.payload);
  }
  EXPECT_FLOAT_EQ(reader.norm(1, 17).mean, archive.norm(1, 17).mean);
  EXPECT_FLOAT_EQ(reader.norm(1, 17).range, archive.norm(1, 17).range);

  // Range queries: [18, 20) lies inside the t0=16 record; [8, 20) spans two.
  const auto one = reader.RecordsFor(0, 18, 20);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(reader.records()[one[0]].t0, 16);
  EXPECT_EQ(reader.RecordsFor(0, 8, 20).size(), 2u);
  EXPECT_EQ(reader.RecordsFor(1, 0, 40).size(), 3u);
  EXPECT_THROW(reader.RecordsFor(2, 0, 1), std::runtime_error);
  EXPECT_THROW(reader.RecordsFor(0, 10, 5), std::runtime_error);
  EXPECT_THROW(reader.RecordsFor(0, 0, 41), std::runtime_error);
}

TEST(ArchiveReader, FileBackedV3FetchesOnlyTouchedPayloads) {
  const Tensor field = MakeField(113);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const std::string path = "/tmp/glsc_serve_test_v3.glsca";
  const auto v3_bytes = archive.Serialize({.version = 3});
  WriteFileBytes(path, v3_bytes);
  const std::uint64_t file_bytes = v3_bytes.size();

  const auto reader = core::ArchiveReader::FromFile(path);
  ASSERT_EQ(reader.records().size(), 6u);
  EXPECT_EQ(reader.archive_bytes(), file_bytes);
  // Opening reads header + footer + index only — no payload bytes.
  EXPECT_EQ(reader.payload_bytes_fetched(), 0u);

  const auto hits = reader.RecordsFor(0, 18, 20);
  ASSERT_EQ(hits.size(), 1u);
  const auto payload = reader.ReadPayload(hits[0]);
  EXPECT_EQ(payload, archive.entries()[hits[0]].payload);
  // Exactly that record's payload bytes crossed the file boundary.
  EXPECT_EQ(reader.payload_bytes_fetched(), payload.size());
  EXPECT_LT(reader.payload_bytes_fetched(), file_bytes);
  std::filesystem::remove(path);
}

TEST(ArchiveReader, BuildsIndexOnTheFlyForV2) {
  const Tensor field = MakeField(127);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto v2_bytes = SerializeAsV2(archive);

  // The v2 wire format still loads through DatasetArchive::Deserialize...
  const core::DatasetArchive reloaded =
      core::DatasetArchive::Deserialize(v2_bytes);
  ASSERT_EQ(reloaded.entries().size(), archive.entries().size());

  // ...and through ArchiveReader, which rebuilds the index by scanning.
  const auto reader = core::ArchiveReader::FromBytes(v2_bytes);
  ASSERT_EQ(reader.records().size(), archive.entries().size());
  for (std::size_t i = 0; i < reader.records().size(); ++i) {
    EXPECT_EQ(reader.ReadPayload(i), archive.entries()[i].payload) << i;
    EXPECT_EQ(reader.records()[i].valid_frames,
              archive.entries()[i].valid_frames);
  }

  // Serving a v2 archive end to end matches the v3 path bit for bit.
  auto codec = api::Compressor::Create("sz");
  DecodeScheduler scheduler(&reader, codec.get());
  const auto v3_reader = core::ArchiveReader::FromBytes(archive.Serialize());
  DecodeScheduler v3_scheduler(&v3_reader, codec.get());
  const Tensor from_v2 = scheduler.GetAll();
  const Tensor from_v3 = v3_scheduler.GetAll();
  ASSERT_EQ(from_v2.shape(), from_v3.shape());
  EXPECT_EQ(std::memcmp(from_v2.data(), from_v3.data(),
                        static_cast<std::size_t>(from_v2.numel()) *
                            sizeof(float)),
            0);
}

TEST(ArchiveReader, BuildsIndexOnTheFlyForV1) {
  // Hand-assembled v1 archive (GLSC-only record bodies, no codec id, no
  // valid_frames): the reader must locate each record body as its payload.
  Rng rng(17);
  core::CompressedWindow w0, w1;
  for (core::CompressedWindow* w : {&w0, &w1}) {
    w->keyframes.y_stream.resize(40 + rng.UniformInt(100));
    for (auto& b : w->keyframes.y_stream) {
      b = static_cast<std::uint8_t>(rng.UniformInt(256));
    }
    w->keyframes.z_stream.resize(10 + rng.UniformInt(30));
    for (auto& b : w->keyframes.z_stream) {
      b = static_cast<std::uint8_t>(rng.UniformInt(256));
    }
    w->keyframes.y_shape = {4, 8, 4, 4};
    w->keyframes.z_shape = {4, 4, 1, 1};
    w->window_shape = {8, 16, 16};
    w->sample_seed = static_cast<std::uint32_t>(rng.NextU64());
    w->corrections.resize(4);
    for (auto& c : w->corrections) {
      c.resize(rng.UniformInt(50));
      for (auto& b : c) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    }
  }

  ByteWriter v1;
  v1.PutBytes("GLSC", 4);
  v1.PutU8(1);
  for (const std::uint64_t d : {1ull, 16ull, 16ull, 16ull}) v1.PutU64(d);
  v1.PutU64(8);  // window
  for (int i = 0; i < 16; ++i) {
    v1.PutF32(static_cast<float>(i));
    v1.PutF32(1.0f + static_cast<float>(i));
  }
  v1.PutVarU64(2);
  v1.PutVarU64(0);  // variable
  v1.PutVarU64(0);  // t0
  core::SerializeWindow(w0, &v1);
  v1.PutVarU64(0);
  v1.PutVarU64(8);
  core::SerializeWindow(w1, &v1);

  const auto reader = core::ArchiveReader::FromBytes(v1.bytes());
  EXPECT_EQ(reader.codec(), "glsc");
  EXPECT_EQ(reader.dataset_shape(), (Shape{1, 16, 16, 16}));
  ASSERT_EQ(reader.records().size(), 2u);
  EXPECT_EQ(reader.records()[0].valid_frames, 8);
  EXPECT_EQ(reader.records()[1].t0, 8);
  ByteWriter p0, p1;
  core::SerializeWindow(w0, &p0);
  core::SerializeWindow(w1, &p1);
  EXPECT_EQ(reader.ReadPayload(0), p0.bytes());
  EXPECT_EQ(reader.ReadPayload(1), p1.bytes());
  EXPECT_FLOAT_EQ(reader.norm(0, 3).mean, 3.0f);
}

TEST(ArchiveReader, RejectsTruncatedOrCorruptFooter) {
  const Tensor field = MakeField(131, /*variables=*/1);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  auto bytes = archive.Serialize();

  // Truncations landing in the footer, the index block, and the record area
  // must all throw — never misparse or read out of bounds.
  for (const std::size_t len :
       {bytes.size() - 1, bytes.size() - 6, bytes.size() - 13,
        bytes.size() - 40, bytes.size() / 2}) {
    const std::vector<std::uint8_t> cut(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(core::ArchiveReader::FromBytes(cut), std::runtime_error)
        << "length " << len;
    EXPECT_THROW(core::DatasetArchive::Deserialize(cut), std::runtime_error)
        << "length " << len;
  }

  // Corrupt index magic.
  auto bad_magic = bytes;
  bad_magic[bad_magic.size() - 1] = 'Z';
  EXPECT_THROW(core::ArchiveReader::FromBytes(bad_magic), std::runtime_error);

  // Footer pointing the index out of range.
  auto bad_offset = bytes;
  for (std::size_t i = 0; i < 8; ++i) {
    bad_offset[bad_offset.size() - 12 + i] = 0xFF;
  }
  EXPECT_THROW(core::ArchiveReader::FromBytes(bad_offset),
               std::runtime_error);
}

TEST(DecodeScheduler, FullRangeMatchesDecodeAllForAnyWorkerCount) {
  const Tensor field = MakeField(137);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  auto codec = api::Compressor::Create("sz");

  api::DecodeSession session(codec.get(), archive);
  const Tensor reference = session.DecodeAll();

  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  for (const std::int64_t workers : {1, 2, 3}) {
    ScheduleOptions options;
    options.workers = workers;
    DecodeScheduler scheduler(&reader, codec.get(), options);
    const Tensor full = scheduler.GetAll();
    ASSERT_EQ(full.shape(), reference.shape()) << workers << " workers";
    EXPECT_EQ(std::memcmp(full.data(), reference.data(),
                          static_cast<std::size_t>(full.numel()) *
                              sizeof(float)),
              0)
        << workers << " workers";

    // Per-variable range queries stitch to the same bytes.
    const std::int64_t frames = field.dim(1);
    const std::int64_t hw = field.dim(2) * field.dim(3);
    for (std::int64_t v = 0; v < field.dim(0); ++v) {
      const Tensor slice = scheduler.Get(v, 0, frames);
      EXPECT_EQ(std::memcmp(slice.data(),
                            reference.data() + v * frames * hw,
                            static_cast<std::size_t>(frames * hw) *
                                sizeof(float)),
                0)
          << "variable " << v << ", " << workers << " workers";
    }
  }
}

TEST(DecodeScheduler, SingleWindowDecodesExactlyOneRecord) {
  const Tensor field = MakeField(139);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const std::string path = "/tmp/glsc_serve_test_single.glsca";
  archive.WriteFile(path);

  auto calls = std::make_shared<std::atomic<int>>(0);
  CountingCodec codec(api::Compressor::Create("sz"), calls);
  const auto reader = core::ArchiveReader::FromFile(path);
  DecodeScheduler scheduler(&reader, &codec);

  // [18, 20) for variable 0 lives entirely in the t0=16 record: exactly one
  // DecompressWindow call, exactly one record's payload bytes off disk.
  const Tensor slice = scheduler.Get(0, 18, 20);
  EXPECT_EQ(slice.shape(), (Shape{2, 32, 32}));
  EXPECT_EQ(calls->load(), 1);
  EXPECT_EQ(scheduler.decoded_records(), 1);
  const auto hit = reader.RecordsFor(0, 18, 20);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(reader.payload_bytes_fetched(), reader.records()[hit[0]].length);

  // The slice matches the full decode of those frames.
  api::DecodeSession session(&codec, archive);
  const Tensor all = session.DecodeAll();
  const std::int64_t hw = field.dim(2) * field.dim(3);
  EXPECT_EQ(std::memcmp(slice.data(), all.data() + (0 * 40 + 18) * hw,
                        static_cast<std::size_t>(2 * hw) * sizeof(float)),
            0);
  std::filesystem::remove(path);
}

TEST(DecodeScheduler, CachesOverlappingQueriesAndEvictsLru) {
  const Tensor field = MakeField(149, /*variables=*/1);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());

  auto calls = std::make_shared<std::atomic<int>>(0);
  CountingCodec codec(api::Compressor::Create("sz"), calls);

  {  // Overlapping queries reuse the cached record.
    DecodeScheduler scheduler(&reader, &codec);
    (void)scheduler.Get(0, 16, 32);
    EXPECT_EQ(calls->load(), 1);
    (void)scheduler.Get(0, 20, 30);
    EXPECT_EQ(calls->load(), 1);  // served from cache
    EXPECT_EQ(scheduler.cache_hits(), 1);
    (void)scheduler.Get(0, 0, 40);  // needs the other two records
    EXPECT_EQ(calls->load(), 3);
    EXPECT_EQ(scheduler.cache_hits(), 2);
  }

  {  // Capacity 1: A, B, A re-decodes A; A again hits.
    calls->store(0);
    ScheduleOptions options;
    options.cache_windows = 1;
    DecodeScheduler scheduler(&reader, &codec, options);
    (void)scheduler.Get(0, 0, 8);    // record A (t0 = 0)
    (void)scheduler.Get(0, 16, 24);  // record B evicts A
    (void)scheduler.Get(0, 0, 8);    // A again: miss
    EXPECT_EQ(calls->load(), 3);
    (void)scheduler.Get(0, 0, 8);  // now cached
    EXPECT_EQ(calls->load(), 3);
  }

  {  // cache_windows = 0 disables caching entirely.
    calls->store(0);
    ScheduleOptions options;
    options.cache_windows = 0;
    DecodeScheduler scheduler(&reader, &codec, options);
    (void)scheduler.Get(0, 0, 8);
    (void)scheduler.Get(0, 0, 8);
    EXPECT_EQ(calls->load(), 2);
  }
}

TEST(DecodeScheduler, ConcurrentGetsAreSafeAndConsistent) {
  // Get is documented thread-safe: concurrent queries interleave on the
  // per-worker locks and must all come back byte-identical to the serial
  // reference decode.
  const Tensor field = MakeField(157);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  auto codec = api::Compressor::Create("sz");
  api::DecodeSession session(codec.get(), archive);
  const Tensor reference = session.DecodeAll();

  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  ScheduleOptions options;
  options.workers = 2;
  options.cache_windows = 2;  // small enough to keep evicting under load
  DecodeScheduler scheduler(&reader, codec.get(), options);

  const std::int64_t frames = field.dim(1);
  const std::int64_t hw = field.dim(2) * field.dim(3);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int thread_id = 0; thread_id < 4; ++thread_id) {
    threads.emplace_back([&, thread_id] {
      for (int round = 0; round < 8; ++round) {
        const std::int64_t v = (thread_id + round) % field.dim(0);
        const std::int64_t t0 = ((thread_id * 7 + round * 5) % 3) * 13;
        const std::int64_t t1 = std::min<std::int64_t>(frames, t0 + 14);
        const Tensor slice = scheduler.Get(v, t0, t1);
        if (std::memcmp(slice.data(),
                        reference.data() + (v * frames + t0) * hw,
                        static_cast<std::size_t>((t1 - t0) * hw) *
                            sizeof(float)) != 0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(DecodeScheduler, BatchedDispatchMatchesSerialForAnyWorkerCount) {
  // The coalesced DecompressWindows dispatch must be byte-identical to the
  // per-record dispatch for every (workers, max_batch) combination; the cache
  // is off so every query pays real decodes through the chosen dispatch.
  const Tensor field = MakeField(163);  // 2 variables, 6 records
  const core::DatasetArchive archive = EncodeSzArchive(field);
  auto codec = api::Compressor::Create("sz");
  api::DecodeSession session(codec.get(), archive);
  const Tensor reference = session.DecodeAll();

  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  const std::int64_t frames = field.dim(1);
  const std::int64_t hw = field.dim(2) * field.dim(3);
  for (const std::int64_t workers : {1, 4}) {
    for (const std::int64_t max_batch : {1, 2, 5, 8}) {
      ScheduleOptions options;
      options.workers = workers;
      options.cache_windows = 0;
      options.max_batch = max_batch;
      DecodeScheduler scheduler(&reader, codec.get(), options);
      const Tensor full = scheduler.GetAll();
      ASSERT_EQ(full.shape(), reference.shape());
      EXPECT_EQ(std::memcmp(full.data(), reference.data(),
                            static_cast<std::size_t>(full.numel()) *
                                sizeof(float)),
                0)
          << workers << " workers, max_batch " << max_batch;
      for (std::int64_t v = 0; v < field.dim(0); ++v) {
        const Tensor slice = scheduler.Get(v, 0, frames);
        EXPECT_EQ(std::memcmp(slice.data(),
                              reference.data() + v * frames * hw,
                              static_cast<std::size_t>(frames * hw) *
                                  sizeof(float)),
                  0)
            << "variable " << v << ", " << workers << " workers, max_batch "
            << max_batch;
      }
    }
  }
}

TEST(DecodeScheduler, ConcurrentIdenticalQueriesDecodeEachRecordOnce) {
  // Single-flight regression: concurrent queries missing the same records
  // must not decode any record twice. The per-decode delay keeps all four
  // threads inside the decode window, so without the in-flight table each
  // thread would race past the (still empty) cache and run its own decodes.
  const Tensor field = MakeField(173, /*variables=*/1);  // 3 records
  const core::DatasetArchive archive = EncodeSzArchive(field);
  auto plain = api::Compressor::Create("sz");
  api::DecodeSession session(plain.get(), archive);
  const Tensor reference = session.DecodeAll();

  auto calls = std::make_shared<std::atomic<int>>(0);
  CountingCodec codec(api::Compressor::Create("sz"), calls, /*delay_ms=*/25);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  DecodeScheduler scheduler(&reader, &codec);

  const std::int64_t frames = field.dim(1);
  const std::int64_t hw = field.dim(2) * field.dim(3);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      const Tensor slice = scheduler.Get(0, 0, frames);
      if (std::memcmp(slice.data(), reference.data(),
                      static_cast<std::size_t>(frames * hw) *
                          sizeof(float)) != 0) {
        mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // 3 unique misses — every further serve came from a flight or the cache.
  EXPECT_EQ(calls->load(), 3);
  EXPECT_EQ(scheduler.decoded_records(), 3);
  EXPECT_EQ(scheduler.cache_hits(), 4 * 3 - 3);
}

TEST(DecodeScheduler, BatchLargerThanCacheStillReturnsCorrectBytes) {
  // cache_windows = 1 with a 3-record coalesced batch: the publish pass
  // inserts three records through a capacity-1 LRU, so they evict each other
  // inside one Insert loop. The fetch results must be unaffected — `out[]`
  // holds its own copy of every decoded tensor — and the cache must end up
  // holding exactly the last-published record.
  const Tensor field = MakeField(179, /*variables=*/1);  // 3 records
  const core::DatasetArchive archive = EncodeSzArchive(field);
  auto plain = api::Compressor::Create("sz");
  api::DecodeSession session(plain.get(), archive);
  const Tensor reference = session.DecodeAll();

  auto calls = std::make_shared<std::atomic<int>>(0);
  CountingCodec codec(api::Compressor::Create("sz"), calls);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  ScheduleOptions options;
  options.workers = 1;  // deterministic publish order
  options.cache_windows = 1;
  options.max_batch = 8;
  DecodeScheduler scheduler(&reader, &codec, options);

  const std::int64_t frames = field.dim(1);
  const std::int64_t hw = field.dim(2) * field.dim(3);
  const Tensor full = scheduler.Get(0, 0, frames);
  EXPECT_EQ(std::memcmp(full.data(), reference.data(),
                        static_cast<std::size_t>(frames * hw) *
                            sizeof(float)),
            0);
  EXPECT_EQ(calls->load(), 3);

  // The survivor is the last record published (t0 = 32): re-fetching it hits.
  (void)scheduler.Get(0, 32, 40);
  EXPECT_EQ(calls->load(), 3);
  // Any earlier record was evicted during the batch publish: miss.
  (void)scheduler.Get(0, 0, 8);
  EXPECT_EQ(calls->load(), 4);
}

TEST(DecodeScheduler, UncoveredFramesStayExactlyZero) {
  // An archive with a coverage hole (the t0=16 record dropped): Get over a
  // range spanning the hole must return the covered frames bit-exactly and
  // leave every uncovered frame at exactly 0.0f — no denormalization may
  // touch frames no record covers.
  const Tensor field = MakeField(181, /*variables=*/1);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  std::size_t hole = archive.entries().size();
  for (std::size_t i = 0; i < archive.entries().size(); ++i) {
    if (archive.entries()[i].t0 == 16) hole = i;
  }
  ASSERT_LT(hole, archive.entries().size());

  auto codec = api::Compressor::Create("sz");
  api::DecodeSession session(codec.get(), archive);
  const Tensor reference = session.DecodeAll();

  const auto reader =
      core::ArchiveReader::FromBytes(SerializeAsV2(archive, hole));
  ASSERT_EQ(reader.records().size(), archive.entries().size() - 1);
  DecodeScheduler scheduler(&reader, codec.get());

  const std::int64_t hw = field.dim(2) * field.dim(3);
  const Tensor slice = scheduler.Get(0, 8, 36);  // [8,16) + hole + [32,36)
  ASSERT_EQ(slice.shape(), (Shape{28, field.dim(2), field.dim(3)}));
  EXPECT_EQ(std::memcmp(slice.data(), reference.data() + 8 * hw,
                        static_cast<std::size_t>(8 * hw) * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(slice.data() + 24 * hw, reference.data() + 32 * hw,
                        static_cast<std::size_t>(4 * hw) * sizeof(float)),
            0);
  for (std::int64_t k = 8 * hw; k < 24 * hw; ++k) {
    ASSERT_EQ(slice.data()[k], 0.0f) << "uncovered frame element " << k;
  }
}

TEST(DecodeScheduler, RejectsCodecMismatch) {
  const Tensor field = MakeField(151, /*variables=*/1);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  auto zfp = api::Compressor::Create("zfp");
  EXPECT_THROW(DecodeScheduler(&reader, zfp.get()), std::runtime_error);
}

}  // namespace
}  // namespace glsc::serve
