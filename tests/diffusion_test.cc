#include <gtest/gtest.h>

#include <cmath>

#include "compress/vae.h"
#include "data/dataset.h"
#include "data/field_generators.h"
#include "diffusion/conditioner.h"
#include "diffusion/noise_schedule.h"
#include "diffusion/sampler.h"
#include "diffusion/trainer.h"
#include "tensor/ops.h"

namespace glsc::diffusion {
namespace {

class ScheduleTest
    : public ::testing::TestWithParam<std::pair<ScheduleKind, std::int64_t>> {};

TEST_P(ScheduleTest, Invariants) {
  const auto [kind, steps] = GetParam();
  NoiseSchedule schedule(kind, steps);
  EXPECT_EQ(schedule.steps(), steps);
  double prev_ab = 1.0;
  for (std::int64_t t = 0; t < steps; ++t) {
    EXPECT_GT(schedule.beta(t), 0.0);
    EXPECT_LT(schedule.beta(t), 1.0);
    // alpha_bar strictly decreasing in t, within (0, 1).
    EXPECT_LT(schedule.alpha_bar(t), prev_ab);
    EXPECT_GT(schedule.alpha_bar(t), 0.0);
    prev_ab = schedule.alpha_bar(t);
  }
  // Terminal signal level should be small (mostly noise at t = T-1).
  EXPECT_LT(schedule.alpha_bar(steps - 1), 0.05);
  EXPECT_DOUBLE_EQ(schedule.alpha_bar_prev(0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndLengths, ScheduleTest,
    ::testing::Values(std::pair{ScheduleKind::kLinear, std::int64_t{100}},
                      std::pair{ScheduleKind::kLinear, std::int64_t{1000}},
                      std::pair{ScheduleKind::kCosine, std::int64_t{200}},
                      std::pair{ScheduleKind::kCosine, std::int64_t{50}}));

class RespaceTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RespaceTest, SubsetProperties) {
  NoiseSchedule schedule(ScheduleKind::kLinear, 200);
  const auto ladder = schedule.Respace(GetParam());
  ASSERT_FALSE(ladder.empty());
  EXPECT_EQ(ladder.back(), 199);  // always includes the last (noisiest) step
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i], ladder[i - 1]);  // strictly ascending
  }
  EXPECT_LE(static_cast<std::int64_t>(ladder.size()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Counts, RespaceTest,
                         ::testing::Values(1, 2, 8, 32, 64, 128, 200));

TEST(Keyframes, InterpolationPattern) {
  // Paper §4.4: interval 3 over 16 frames -> {0,3,6,9,12,15}.
  const auto keys =
      SelectKeyframes(KeyframeStrategy::kInterpolation, 16, 3, 0);
  EXPECT_EQ(keys, (std::vector<std::int64_t>{0, 3, 6, 9, 12, 15}));
}

TEST(Keyframes, InterpolationAnchorsTail) {
  const auto keys =
      SelectKeyframes(KeyframeStrategy::kInterpolation, 16, 4, 0);
  // 0,4,8,12 then the tail anchor 15.
  EXPECT_EQ(keys, (std::vector<std::int64_t>{0, 4, 8, 12, 15}));
}

TEST(Keyframes, PredictionPattern) {
  const auto keys = SelectKeyframes(KeyframeStrategy::kPrediction, 16, 0, 6);
  EXPECT_EQ(keys, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(Keyframes, MixedPattern) {
  const auto keys = SelectKeyframes(KeyframeStrategy::kMixed, 16, 0, 6);
  EXPECT_EQ(keys, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 15}));
}

TEST(Keyframes, GeneratedIsComplement) {
  const auto keys =
      SelectKeyframes(KeyframeStrategy::kInterpolation, 16, 3, 0);
  const auto gen = GeneratedIndices(keys, 16);
  EXPECT_EQ(gen.size() + keys.size(), 16u);
  std::vector<bool> seen(16, false);
  for (const auto k : keys) seen[static_cast<std::size_t>(k)] = true;
  for (const auto g : gen) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(g)]);
    seen[static_cast<std::size_t>(g)] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Conditioner, GatherScatterComposeRoundTrip) {
  Rng rng(5);
  Tensor window = Tensor::Randn({8, 2, 3, 3}, rng);
  const std::vector<std::int64_t> keys{0, 3, 6};
  const auto gen = GeneratedIndices(keys, 8);

  const Tensor packed_keys = GatherFrames(window, keys);
  const Tensor packed_gen = GatherFrames(window, gen);
  EXPECT_EQ(packed_keys.dim(0), 3);
  EXPECT_EQ(packed_gen.dim(0), 5);

  const Tensor recomposed = Compose(packed_gen, packed_keys, gen, keys);
  ASSERT_EQ(recomposed.shape(), window.shape());
  for (std::int64_t i = 0; i < window.numel(); ++i) {
    ASSERT_EQ(recomposed[i], window[i]);
  }
}

TEST(Conditioner, LatentNormMapsToUnitRange) {
  Rng rng(6);
  Tensor t = Tensor::Randn({4, 2, 3, 3}, rng, 10.0f);
  const LatentNorm norm = LatentNorm::FromTensor(t);
  const Tensor n = norm.Normalize(t);
  EXPECT_NEAR(n.MinValue(), -1.0f, 1e-5);
  EXPECT_NEAR(n.MaxValue(), 1.0f, 1e-5);
  const Tensor back = norm.Denormalize(n);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(back[i], t[i], 1e-3f * std::max(1.0f, std::fabs(t[i])));
  }
}

TEST(Conditioner, LatentNormConstantTensor) {
  Tensor t = Tensor::Full({2, 2}, 3.0f);
  const LatentNorm norm = LatentNorm::FromTensor(t);
  const Tensor n = norm.Normalize(t);
  EXPECT_TRUE(n.AllFinite());
}

TEST(Sampler, DeterministicGivenSeed) {
  UNetConfig config;
  config.latent_channels = 4;
  config.model_channels = 8;
  config.heads = 2;
  SpaceTimeUNet unet(config);
  NoiseSchedule schedule(ScheduleKind::kLinear, 50);
  SamplerConfig sampler;
  sampler.steps = 8;

  Rng data_rng(7);
  const std::vector<std::int64_t> keys{0, 3, 6, 7};
  Tensor keyframes = Tensor::Randn({4, 4, 4, 4}, data_rng);

  Rng rng_a(42), rng_b(42), rng_c(43);
  const Tensor a =
      SampleConditional(&unet, schedule, sampler, keyframes, keys, 8, rng_a);
  const Tensor b =
      SampleConditional(&unet, schedule, sampler, keyframes, keys, 8, rng_b);
  const Tensor c =
      SampleConditional(&unet, schedule, sampler, keyframes, keys, 8, rng_c);
  ASSERT_EQ(a.shape(), (Shape{4, 4, 4, 4}));
  double diff_ab = 0.0, diff_ac = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    diff_ab += std::fabs(a[i] - b[i]);
    diff_ac += std::fabs(a[i] - c[i]);
  }
  EXPECT_EQ(diff_ab, 0.0) << "same seed must give identical samples";
  EXPECT_GT(diff_ac, 0.0) << "different seed should differ";
}

TEST(Sampler, OutputFinitePerStepCount) {
  UNetConfig config;
  config.latent_channels = 2;
  config.model_channels = 8;
  config.heads = 2;
  SpaceTimeUNet unet(config);
  NoiseSchedule schedule(ScheduleKind::kLinear, 100);
  Rng rng(9);
  Tensor keyframes = Tensor::Randn({2, 2, 4, 4}, rng);
  for (const std::int64_t steps : {1, 2, 8, 50}) {
    SamplerConfig sampler;
    sampler.steps = steps;
    Rng srng(11);
    const Tensor out = SampleConditional(&unet, schedule, sampler, keyframes,
                                         {0, 7}, 8, srng);
    EXPECT_TRUE(out.AllFinite()) << steps << " steps";
    EXPECT_EQ(out.dim(0), 6);
  }
}

TEST(Trainer, MaskedLossDecreases) {
  data::FieldSpec spec;
  spec.frames = 32;
  spec.height = 16;
  spec.width = 16;
  data::SequenceDataset dataset(data::GenerateClimate(spec));

  compress::VaeConfig vae_cfg;
  vae_cfg.latent_channels = 4;
  vae_cfg.hidden_channels = 8;
  vae_cfg.hyper_channels = 2;
  compress::VaeHyperprior vae(vae_cfg);

  UNetConfig unet_cfg;
  unet_cfg.latent_channels = 4;
  unet_cfg.model_channels = 8;
  unet_cfg.heads = 2;
  SpaceTimeUNet unet(unet_cfg);
  NoiseSchedule schedule(ScheduleKind::kLinear, 50);

  DiffusionTrainConfig cfg;
  cfg.iterations = 30;
  cfg.window = 8;
  cfg.crop = 16;
  cfg.interval = 3;
  cfg.log_every = 0;
  const double first = TrainDiffusion(&unet, schedule, &vae, dataset, cfg);

  cfg.iterations = 150;
  cfg.seed = 31;
  const double later = TrainDiffusion(&unet, schedule, &vae, dataset, cfg);
  EXPECT_LT(later, first * 1.05)
      << "continued training should not regress the masked noise MSE";
}

TEST(Conditioner, ComposeRejectsMismatchedCounts) {
  Rng rng(11);
  Tensor gen = Tensor::Randn({3, 2, 2, 2}, rng);
  Tensor keys = Tensor::Randn({2, 2, 2, 2}, rng);
  // gen_idx has 2 entries but `gen` holds 3 frames.
  EXPECT_THROW(Compose(gen, keys, {0, 2}, {1, 3}), std::runtime_error);
}

TEST(Keyframes, IntervalOneMeansEverythingStored) {
  const auto keys =
      SelectKeyframes(KeyframeStrategy::kInterpolation, 8, 1, 0);
  EXPECT_EQ(keys.size(), 8u);
  EXPECT_TRUE(GeneratedIndices(keys, 8).empty());
}

TEST(Trainer, FinetuneRestrictsTimesteps) {
  // A fine-tune pass at 4 steps must train and keep the model sane (the
  // respaced pool is exercised inside TrainDiffusion).
  data::FieldSpec spec;
  spec.frames = 16;
  spec.height = 16;
  spec.width = 16;
  data::SequenceDataset dataset(data::GenerateClimate(spec));
  compress::VaeConfig vae_cfg;
  vae_cfg.latent_channels = 4;
  vae_cfg.hidden_channels = 6;
  vae_cfg.hyper_channels = 2;
  compress::VaeHyperprior vae(vae_cfg);
  UNetConfig unet_cfg;
  unet_cfg.latent_channels = 4;
  unet_cfg.model_channels = 8;
  unet_cfg.heads = 2;
  SpaceTimeUNet unet(unet_cfg);
  NoiseSchedule schedule(ScheduleKind::kLinear, 40);

  DiffusionTrainConfig cfg;
  cfg.iterations = 20;
  cfg.window = 8;
  cfg.crop = 16;
  cfg.finetune_steps = 4;
  cfg.log_every = 0;
  const double loss = TrainDiffusion(&unet, schedule, &vae, dataset, cfg);
  EXPECT_TRUE(std::isfinite(loss));
  for (nn::Param* p : unet.Params()) {
    ASSERT_TRUE(p->value.AllFinite()) << p->name;
  }
}

TEST(Trainer, QuantizedLatentWindowShape) {
  compress::VaeConfig vae_cfg;
  vae_cfg.latent_channels = 4;
  vae_cfg.hidden_channels = 6;
  vae_cfg.hyper_channels = 2;
  compress::VaeHyperprior vae(vae_cfg);
  Rng rng(3);
  Tensor frames = Tensor::Randn({5, 16, 16}, rng, 0.3f);
  const Tensor y = QuantizedLatentWindow(&vae, frames);
  EXPECT_EQ(y.shape(), (Shape{5, 4, 4, 4}));
  // Values are integers.
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_EQ(y[i], std::nearbyint(y[i]));
  }
}

}  // namespace
}  // namespace glsc::diffusion
