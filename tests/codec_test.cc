#include <gtest/gtest.h>

#include <cmath>

#include "codec/bitio.h"
#include "codec/factorized_prior.h"
#include "codec/gaussian_model.h"
#include "codec/huffman.h"
#include "codec/range_coder.h"
#include "util/rng.h"

namespace glsc::codec {
namespace {

TEST(BitIo, RoundTrip) {
  BitWriter w;
  w.PutBit(true);
  w.PutBits(0b1011, 4);
  w.PutBits(0xDEAD, 16);
  const auto bytes = w.Finish();
  BitReader r(bytes.data(), bytes.size());
  EXPECT_TRUE(r.GetBit());
  EXPECT_EQ(r.GetBits(4), 0b1011u);
  EXPECT_EQ(r.GetBits(16), 0xDEADu);
}

TEST(BitIo, ReadPastEndYieldsZeros) {
  BitWriter w;
  w.PutBit(true);
  const auto bytes = w.Finish();
  BitReader r(bytes.data(), bytes.size());
  EXPECT_TRUE(r.GetBit());
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(r.GetBit());
}

// ---- range coder: round-trip under several symbol distributions ----

struct RangeCase {
  int alphabet;
  double skew;  // 0 = uniform, higher = more skewed
  int count;
};

class RangeCoderTest : public ::testing::TestWithParam<RangeCase> {};

TEST_P(RangeCoderTest, RoundTrip) {
  const auto& p = GetParam();
  Rng rng(77);

  // Build a frequency table.
  std::vector<std::uint32_t> freq(p.alphabet);
  std::uint32_t total = 0;
  for (int s = 0; s < p.alphabet; ++s) {
    freq[s] = 1 + static_cast<std::uint32_t>(
                      60.0 * std::exp(-p.skew * s / p.alphabet));
    total += freq[s];
  }
  ASSERT_LT(total, RangeEncoder::kMaxTotal);
  std::vector<std::uint32_t> cum(p.alphabet + 1, 0);
  for (int s = 0; s < p.alphabet; ++s) cum[s + 1] = cum[s] + freq[s];

  // Random symbol stream drawn from the same distribution.
  std::vector<int> symbols(p.count);
  for (auto& s : symbols) {
    const auto slot = static_cast<std::uint32_t>(rng.UniformInt(total));
    int sym = 0;
    while (cum[sym + 1] <= slot) ++sym;
    s = sym;
  }

  RangeEncoder enc;
  for (const int s : symbols) enc.Encode(cum[s], freq[s], total);
  const auto bytes = enc.Finish();

  RangeDecoder dec(bytes.data(), bytes.size());
  for (const int expected : symbols) {
    const std::uint32_t slot = dec.DecodeSlot(total);
    int sym = 0;
    while (cum[sym + 1] <= slot) ++sym;
    dec.Consume(cum[sym], freq[sym], total);
    ASSERT_EQ(sym, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, RangeCoderTest,
    ::testing::Values(RangeCase{2, 0.0, 5000}, RangeCase{2, 8.0, 5000},
                      RangeCase{17, 0.0, 3000}, RangeCase{17, 5.0, 3000},
                      RangeCase{256, 3.0, 2000}, RangeCase{1000, 0.0, 500}));

TEST(RangeCoder, NearEntropyOnSkewedStream) {
  // A 95/5 binary source has entropy ~0.286 bits/symbol; the coded size
  // should be within a few percent of that plus flush overhead.
  Rng rng(99);
  const std::uint32_t total = 100;
  const std::uint32_t f0 = 95, f1 = 5;
  const int n = 20000;
  RangeEncoder enc;
  int ones = 0;
  for (int i = 0; i < n; ++i) {
    const bool one = rng.UniformInt(100) < 5;
    ones += one;
    if (one) enc.Encode(f0, f1, total);
    else enc.Encode(0, f0, total);
  }
  const auto bytes = enc.Finish();
  const double entropy_bits =
      n * (-(0.95 * std::log2(0.95) + 0.05 * std::log2(0.05)));
  EXPECT_LT(bytes.size() * 8.0, entropy_bits * 1.10 + 64);
  (void)ones;
}

// ---- Gaussian conditional model ----

class GaussianModelTest : public ::testing::TestWithParam<float> {};

TEST_P(GaussianModelTest, RoundTripAtScale) {
  const float sigma_value = GetParam();
  Rng rng(123);
  const Shape shape{2, 4, 6, 6};
  Tensor mu = Tensor::Randn(shape, rng, 3.0f);
  Tensor sigma = Tensor::Full(shape, sigma_value);
  // y drawn near mu at the given scale, then rounded to integers.
  Tensor y(shape);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    y[i] = std::nearbyint(mu[i] + sigma_value * rng.NormalF());
  }

  GaussianConditionalModel model;
  const auto bytes = model.Encode(y, mu, sigma);
  const Tensor decoded = model.Decode(bytes, mu, sigma);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_EQ(decoded[i], y[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, GaussianModelTest,
                         ::testing::Values(0.1f, 0.5f, 1.0f, 4.0f, 16.0f,
                                           60.0f));

TEST(GaussianModel, HandlesOutliersViaEscape) {
  const Shape shape{1, 1, 2, 2};
  Tensor mu = Tensor::Zeros(shape);
  Tensor sigma = Tensor::Full(shape, 1.0f);
  Tensor y(shape);
  y[0] = 100000.0f;  // far outside the window
  y[1] = -70000.0f;
  y[2] = 0.0f;
  y[3] = 63.0f;  // window edge
  GaussianConditionalModel model;
  const auto bytes = model.Encode(y, mu, sigma);
  const Tensor decoded = model.Decode(bytes, mu, sigma);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(decoded[i], y[i]);
}

TEST(GaussianModel, CodedSizeTracksTheory) {
  Rng rng(321);
  const Shape shape{1, 8, 16, 16};
  Tensor mu = Tensor::Zeros(shape);
  Tensor sigma = Tensor::Full(shape, 2.0f);
  Tensor y(shape);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    y[i] = std::nearbyint(2.0f * rng.NormalF());
  }
  GaussianConditionalModel model;
  const auto bytes = model.Encode(y, mu, sigma);
  const double theory = model.TheoreticalBits(y, mu, sigma);
  // Quantized tables + flush cost a little over the exact entropy.
  EXPECT_LT(bytes.size() * 8.0, theory * 1.25 + 128);
  EXPECT_GT(bytes.size() * 8.0, theory * 0.75);
}

// ---- logistic channel codec ----

TEST(LogisticCodec, RoundTrip) {
  Rng rng(55);
  const Shape shape{3, 4, 5, 5};
  std::vector<float> mu{0.0f, -2.5f, 10.0f, 0.3f};
  std::vector<float> s{0.5f, 1.0f, 3.0f, 8.0f};
  Tensor z(shape);
  for (std::int64_t i = 0; i < z.numel(); ++i) {
    z[i] = std::nearbyint(5.0f * rng.NormalF());
  }
  LogisticChannelCodec codec;
  const auto bytes = codec.Encode(z, mu, s);
  const Tensor decoded = codec.Decode(bytes, shape, mu, s);
  for (std::int64_t i = 0; i < z.numel(); ++i) ASSERT_EQ(decoded[i], z[i]);
}

TEST(GaussianModel, EncodeIsDeterministic) {
  Rng rng(777);
  const Shape shape{1, 4, 8, 8};
  Tensor mu = Tensor::Randn(shape, rng);
  Tensor sigma = Tensor::Full(shape, 1.5f);
  Tensor y(shape);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    y[i] = std::nearbyint(1.5f * rng.NormalF());
  }
  GaussianConditionalModel a, b;
  EXPECT_EQ(a.Encode(y, mu, sigma), b.Encode(y, mu, sigma))
      << "two model instances must emit identical bitstreams";
}

TEST(LogisticCodec, TheoreticalBitsSaneScale) {
  // For z ~ round(N(0, 3)) under a logistic(0, 3) prior the per-element cost
  // must land between 2 and 8 bits — a smoke bound that catches sign errors
  // in the pmf computation.
  Rng rng(778);
  const Shape shape{1, 1, 16, 16};
  Tensor z(shape);
  for (std::int64_t i = 0; i < z.numel(); ++i) {
    z[i] = std::nearbyint(3.0f * rng.NormalF());
  }
  LogisticChannelCodec codec;
  const double bits = codec.TheoreticalBits(z, {0.0f}, {3.0f});
  EXPECT_GT(bits / z.numel(), 2.0);
  EXPECT_LT(bits / z.numel(), 8.0);
}

TEST(LogisticCodec, OutlierEscape) {
  const Shape shape{1, 1, 1, 3};
  std::vector<float> mu{0.0f};
  std::vector<float> s{1.0f};
  Tensor z(shape);
  z[0] = 1e6f;
  z[1] = -400.0f;
  z[2] = 2.0f;
  LogisticChannelCodec codec;
  const auto bytes = codec.Encode(z, mu, s);
  const Tensor decoded = codec.Decode(bytes, shape, mu, s);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(decoded[i], z[i]);
}

// ---- Huffman ----

class HuffmanTest
    : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(HuffmanTest, RoundTrip) {
  const auto [alphabet, skew] = GetParam();
  Rng rng(888);
  std::vector<std::int32_t> symbols(4000);
  for (auto& s : symbols) {
    // Two-sided geometric-ish distribution centred at 0.
    const double u = rng.Uniform();
    const int mag = static_cast<int>(-std::log(1.0 - u) * skew);
    s = (rng.UniformInt(2) == 0 ? mag : -mag) % alphabet;
  }
  const auto bytes = HuffmanEncode(symbols);
  EXPECT_EQ(HuffmanDecode(bytes), symbols);
}

INSTANTIATE_TEST_SUITE_P(Streams, HuffmanTest,
                         ::testing::Values(std::pair{3, 0.5},
                                           std::pair{100, 2.0},
                                           std::pair{1000, 10.0},
                                           std::pair{5, 0.01}));

TEST(Huffman, EmptyStream) {
  const auto bytes = HuffmanEncode({});
  EXPECT_TRUE(HuffmanDecode(bytes).empty());
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::int32_t> symbols(100, 7);
  const auto bytes = HuffmanEncode(symbols);
  EXPECT_EQ(HuffmanDecode(bytes), symbols);
  // 100 identical symbols should cost ~1 bit each plus the table.
  EXPECT_LT(bytes.size(), 40u);
}

TEST(Huffman, SizeNearEntropy) {
  Rng rng(999);
  std::vector<std::int32_t> symbols(20000);
  for (auto& s : symbols) {
    s = rng.UniformInt(100) < 90 ? 0 : static_cast<std::int32_t>(rng.UniformInt(8));
  }
  const auto bytes = HuffmanEncode(symbols);
  const double entropy = SymbolEntropyBits(symbols);
  // Huffman is within one bit/symbol of entropy; this stream is heavily
  // skewed so the overhead bound matters.
  EXPECT_LT(bytes.size() * 8.0, entropy + symbols.size() * 1.05 + 512);
}

TEST(Huffman, NegativeValues) {
  std::vector<std::int32_t> symbols{-1000000, 1000000, 0, -1, 1, 0, 0, -1};
  EXPECT_EQ(HuffmanDecode(HuffmanEncode(symbols)), symbols);
}

}  // namespace
}  // namespace glsc::codec
