// Tests for the multi-tenant serving front end (serve::ShardManager) and the
// robustness contract underneath it: fault-free byte-identity to the shard
// scheduler, deadline/cancellation semantics, transient-fault retry,
// circuit-breaking quarantine with fail-fast and revival, bounded-queue load
// shedding, per-tenant admission limits, hostile-archive rejection through
// the serving path, and single-record failure isolation in DecodeScheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "data/field_generators.h"
#include "serve/fault_injector.h"
#include "serve/request_queue.h"
#include "serve/shard_manager.h"
#include "util/bytes.h"

namespace glsc::serve {
namespace {

// [V, 40, 32, 32] with window 16: per variable, records at t0 = 0, 16 and a
// padded 8-frame tail at t0 = 32 (same geometry the serve_test fixtures use).
core::DatasetArchive EncodeSzArchive(const Tensor& field) {
  auto codec = api::Compressor::Create("sz");
  api::SessionOptions options;
  options.bound = {api::ErrorBoundMode::kRelative, 0.01};
  api::EncodeSession session(codec.get(), field.dim(0), field.dim(2),
                             field.dim(3), options);
  session.Push(field);
  return session.Finish();
}

Tensor MakeField(std::uint64_t seed, std::int64_t variables = 1) {
  data::FieldSpec spec;
  spec.variables = variables;
  spec.frames = 40;
  spec.height = 32;
  spec.width = 32;
  spec.seed = seed;
  return data::GenerateClimate(spec);
}

// v2 wire format (no footer index — the reader scans). `lie_on_entry` writes
// that record's payload length as far larger than the payload that follows,
// so the scan walks off the end of the stream.
std::vector<std::uint8_t> SerializeAsV2(const core::DatasetArchive& archive,
                                        std::size_t lie_on_entry =
                                            static_cast<std::size_t>(-1)) {
  ByteWriter out;
  out.PutBytes("GLSC", 4);
  out.PutU8(2);
  out.PutString(archive.codec());
  for (const auto d : archive.dataset_shape()) {
    out.PutU64(static_cast<std::uint64_t>(d));
  }
  out.PutU64(static_cast<std::uint64_t>(archive.window()));
  for (std::int64_t v = 0; v < archive.dataset_shape()[0]; ++v) {
    for (std::int64_t t = 0; t < archive.dataset_shape()[1]; ++t) {
      out.PutF32(archive.norm(v, t).mean);
      out.PutF32(archive.norm(v, t).range);
    }
  }
  out.PutVarU64(archive.entries().size());
  for (std::size_t i = 0; i < archive.entries().size(); ++i) {
    const auto& entry = archive.entries()[i];
    out.PutVarU64(static_cast<std::uint64_t>(entry.variable));
    out.PutVarU64(static_cast<std::uint64_t>(entry.t0));
    out.PutVarU64(static_cast<std::uint64_t>(entry.valid_frames));
    out.PutVarU64(entry.payload.size() +
                  (i == lie_on_entry ? (1u << 20) : 0u));
    out.PutBytes(entry.payload.data(), entry.payload.size());
  }
  return out.Release();
}

// Blocks every decode until Release(), so tests can deterministically hold a
// worker busy while they probe queue/admission behavior. Wraps sz like
// serve_test's CountingCodec; overriding the plain DecompressWindow is enough
// because the workspace/batched variants fall back to it.
class GateCodec final : public api::Compressor {
 public:
  struct Gate {
    std::atomic<int> entered{0};
    std::atomic<bool> open{false};
  };

  GateCodec(std::unique_ptr<api::Compressor> inner, std::shared_ptr<Gate> gate)
      : inner_(std::move(inner)), gate_(std::move(gate)) {}

  std::string name() const override { return inner_->name(); }
  api::Capabilities capabilities() const override {
    return inner_->capabilities();
  }
  std::int64_t window() const override { return inner_->window(); }
  std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const api::ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms) override {
    return inner_->CompressWindow(window, bound, norms);
  }
  Tensor DecompressWindow(const std::vector<std::uint8_t>& payload) override {
    gate_->entered.fetch_add(1);
    while (!gate_->open.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return inner_->DecompressWindow(payload);
  }
  std::unique_ptr<api::Compressor> Clone() override {
    return std::make_unique<GateCodec>(inner_->Clone(), gate_);
  }

 private:
  std::unique_ptr<api::Compressor> inner_;
  std::shared_ptr<Gate> gate_;
};

ErrorCode CodeOf(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const StatusError& e) {
    return e.code();
  }
  return ErrorCode::kOk;
}

TEST(RequestQueue, BoundedRejectNewestAndDrainOnClose) {
  RequestQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: reject-newest, no blocking
  EXPECT_EQ(queue.size(), 2u);
  queue.Close();
  EXPECT_FALSE(queue.TryPush(4));  // closed
  // Consumers drain the backlog in order, then observe closure.
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(ShardManager, FaultFreeByteIdenticalToScheduler) {
  // Two shards over different archives, several tenants: with no faults and
  // unconstrained budgets the front end must return exactly the bytes the
  // shard's own scheduler returns.
  const Tensor field0 = MakeField(211, /*variables=*/2);
  const Tensor field1 = MakeField(223);
  const core::DatasetArchive archive0 = EncodeSzArchive(field0);
  const core::DatasetArchive archive1 = EncodeSzArchive(field1);
  const auto reader0 = core::ArchiveReader::FromBytes(archive0.Serialize());
  const auto reader1 = core::ArchiveReader::FromBytes(archive1.Serialize());
  auto codec0 = api::Compressor::Create("sz");
  auto codec1 = api::Compressor::Create("sz");
  auto ref_codec = api::Compressor::Create("sz");

  DecodeScheduler reference0(&reader0, ref_codec.get());
  auto ref_codec1 = api::Compressor::Create("sz");
  DecodeScheduler reference1(&reader1, ref_codec1.get());

  ShardManager manager({{&reader0, codec0.get(), {}},
                        {&reader1, codec1.get(), {}}});
  ASSERT_EQ(manager.num_shards(), 2u);

  const std::vector<std::string> tenants = {"alice", "bob", "carol"};
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      GetRequest request;
      request.shard = i % 2;
      request.variable = request.shard == 0 ? (round % 2) : 0;
      request.t_begin = 5 * round;
      request.t_end = 20 + 5 * round;
      request.tenant = tenants[i];
      const Tensor got = manager.Get(request);
      DecodeScheduler& reference =
          request.shard == 0 ? reference0 : reference1;
      const Tensor want =
          reference.Get(request.variable, request.t_begin, request.t_end);
      ASSERT_EQ(got.shape(), want.shape());
      EXPECT_EQ(std::memcmp(got.data(), want.data(),
                            static_cast<std::size_t>(got.numel()) *
                                sizeof(float)),
                0)
          << "round " << round << " tenant " << tenants[i];
    }
  }

  const ServeStats stats = manager.Stats();
  EXPECT_EQ(stats.admitted, 9);
  EXPECT_EQ(stats.completed, 9);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.shed_queue_full, 0);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.shard_quarantined,
            (std::vector<bool>{false, false}));
}

TEST(ShardManager, RetriesRecoverTransientFaults) {
  const Tensor field = MakeField(227);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  auto codec = api::Compressor::Create("sz");
  auto ref_codec = api::Compressor::Create("sz");
  DecodeScheduler reference(&reader, ref_codec.get());

  // Pin both charges to ONE record so recovery takes two full retry rounds:
  // a record-agnostic fault would burn both charges on different records of
  // the same batched attempt.
  const auto target = reader.RecordsFor(0, 0, 8);
  ASSERT_EQ(target.size(), 1u);
  FaultInjector injector;
  injector.Arm(FaultInjector::Kind::kTransient, /*count=*/2,
               static_cast<std::int64_t>(target[0]));

  ShardSpec spec{&reader, codec.get(), {}};
  spec.schedule.fault_injector = &injector;
  spec.schedule.cache_windows = 0;  // every request decodes: no hit shields
                                    // a later request from its armed fault
  ManagerOptions options;
  options.max_retries = 3;
  options.retry_backoff_ms = 1;
  ShardManager manager({spec}, options);

  GetRequest request;
  request.t_end = 40;
  const Tensor got = manager.Get(request);  // survives both injected faults
  const Tensor want = reference.Get(0, 0, 40);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(got.numel()) * sizeof(float)),
            0);

  const ServeStats stats = manager.Stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(injector.injected_transient(), 2);
  EXPECT_EQ(stats.decode_failures, 2);  // each injected fault failed a record
  EXPECT_FALSE(manager.quarantined(0));  // success reset the failure streak

  // Retries are bounded: more consecutive faults than max_retries fails the
  // request with the transient code instead of retrying forever.
  injector.Arm(FaultInjector::Kind::kTransient, /*count=*/99);
  GetRequest miss;
  miss.t_begin = 16;
  miss.t_end = 24;
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(miss); }),
            ErrorCode::kUnavailable);
  EXPECT_EQ(manager.Stats().retries, 2 + options.max_retries);
}

TEST(ShardManager, DeadlinesAndCancellationFireTyped) {
  const Tensor field = MakeField(229);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  auto codec = api::Compressor::Create("sz");

  FaultInjector injector;
  ShardSpec spec{&reader, codec.get(), {}};
  spec.schedule.fault_injector = &injector;
  spec.schedule.max_batch = 1;  // per-record chunks: deadline checked between
  ShardManager manager({spec});

  {  // Already-expired deadline: fails before touching the decoder.
    const std::int64_t calls_before = injector.decode_calls();
    GetRequest request;
    request.t_end = 40;
    request.deadline = Deadline::AfterMillis(-1);
    EXPECT_EQ(CodeOf([&] { (void)manager.Get(request); }),
              ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(injector.decode_calls(), calls_before);
  }

  {  // Pre-cancelled token: reported as kCancelled (cancel wins).
    CancelToken cancel;
    cancel.Cancel();
    GetRequest request;
    request.t_end = 8;
    request.deadline = Deadline::AfterMillis(-1);
    request.cancel = &cancel;
    EXPECT_EQ(CodeOf([&] { (void)manager.Get(request); }),
              ErrorCode::kCancelled);
  }

  {  // Deadline expiring mid-request: the slow first record burns the budget,
    // the cooperative check between chunks stops the rest.
    injector.Arm(FaultInjector::Kind::kSlow, /*count=*/1, /*record=*/-1,
                 /*slow_ms=*/150);
    GetRequest request;
    request.t_end = 40;  // 3 records -> 3 chunks at max_batch = 1
    request.deadline = Deadline::AfterMillis(40);
    EXPECT_EQ(CodeOf([&] { (void)manager.Get(request); }),
              ErrorCode::kDeadlineExceeded);
  }

  const ServeStats stats = manager.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 2);
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.failed, 3);
  // Deadline/cancel failures are the caller's fault, not the shard's: the
  // circuit breaker must not move.
  EXPECT_FALSE(manager.quarantined(0));

  // The same shard still serves a patient request afterwards.
  GetRequest request;
  request.t_end = 40;
  EXPECT_EQ(manager.Get(request).shape(), (Shape{40, 32, 32}));
}

TEST(ShardManager, RepeatedFailuresQuarantineOnlyThatShard) {
  const Tensor field0 = MakeField(233);
  const Tensor field1 = MakeField(239);
  const core::DatasetArchive archive0 = EncodeSzArchive(field0);
  const core::DatasetArchive archive1 = EncodeSzArchive(field1);
  const auto reader0 = core::ArchiveReader::FromBytes(archive0.Serialize());
  const auto reader1 = core::ArchiveReader::FromBytes(archive1.Serialize());
  auto codec0 = api::Compressor::Create("sz");
  auto codec1 = api::Compressor::Create("sz");

  FaultInjector injector;
  injector.Arm(FaultInjector::Kind::kCorrupt, /*count=*/999);
  ShardSpec sick{&reader0, codec0.get(), {}};
  sick.schedule.fault_injector = &injector;
  ManagerOptions options;
  options.quarantine_threshold = 3;
  ShardManager manager({sick, {&reader1, codec1.get(), {}}}, options);

  GetRequest request;
  request.t_end = 8;
  // Corrupt payloads are NOT transient: each request fails kDataLoss with no
  // retry, and the third consecutive failure trips the breaker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(CodeOf([&] { (void)manager.Get(request); }),
              ErrorCode::kDataLoss)
        << "request " << i;
    EXPECT_EQ(manager.quarantined(0), i == 2) << "request " << i;
  }
  EXPECT_EQ(manager.Stats().retries, 0);

  // Quarantined: fail fast with kQuarantined, decoder never consulted.
  const std::int64_t calls_before = injector.decode_calls();
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(request); }),
            ErrorCode::kQuarantined);
  EXPECT_EQ(injector.decode_calls(), calls_before);
  EXPECT_EQ(manager.Stats().rejected_quarantine, 1);

  // The healthy shard is untouched by its neighbor's quarantine.
  GetRequest healthy = request;
  healthy.shard = 1;
  EXPECT_EQ(manager.Get(healthy).shape(), (Shape{8, 32, 32}));
  EXPECT_FALSE(manager.quarantined(1));

  // Repair (disarm the faults) + revive: the shard serves again.
  injector.Disarm();
  manager.ReviveShard(0);
  EXPECT_FALSE(manager.quarantined(0));
  EXPECT_EQ(manager.Get(request).shape(), (Shape{8, 32, 32}));
  EXPECT_EQ(manager.Stats().shard_quarantined,
            (std::vector<bool>{false, false}));
}

TEST(ShardManager, FullQueueShedsImmediatelyWithTypedError) {
  const Tensor field = MakeField(241);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  auto gate = std::make_shared<GateCodec::Gate>();
  GateCodec codec(api::Compressor::Create("sz"), gate);

  ManagerOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 2;
  ShardManager manager({{&reader, &codec, {}}}, options);

  GetRequest request;
  request.t_end = 8;

  // One request holds the only worker inside the gated decode; two more fill
  // the bounded queue behind it.
  std::vector<std::thread> callers;
  std::atomic<int> succeeded{0};
  callers.emplace_back([&] {
    (void)manager.Get(request);
    succeeded.fetch_add(1);
  });
  while (gate->entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 2; ++i) {
    callers.emplace_back([&] {
      (void)manager.Get(request);
      succeeded.fetch_add(1);
    });
  }
  while (manager.Stats().queue_depth < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The next request is shed NOW — typed, and fast (no blocking push).
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(request); }),
            ErrorCode::kQueueFull);
  const auto shed_latency = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(shed_latency)
                .count(),
            1000);
  EXPECT_EQ(manager.Stats().shed_queue_full, 1);

  // Open the gate: everything admitted completes; nothing was lost.
  gate->open.store(true);
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(succeeded.load(), 3);
  const ServeStats stats = manager.Stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ShardManager, TenantLimitsAndByteBudgetsEnforced) {
  const Tensor field = MakeField(251);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  auto gate = std::make_shared<GateCodec::Gate>();
  GateCodec codec(api::Compressor::Create("sz"), gate);

  ManagerOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 8;
  ShardManager manager({{&reader, &codec, {}}}, options);
  TenantLimits one;
  one.max_in_flight = 1;
  manager.SetTenantLimits("limited", one);

  GetRequest request;
  request.t_end = 8;
  request.tenant = "limited";

  std::thread holder([&] { (void)manager.Get(request); });
  while (gate->entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Same tenant: over its in-flight cap -> rejected at admission.
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(request); }),
            ErrorCode::kTenantLimit);
  EXPECT_EQ(manager.Stats().rejected_tenant_limit, 1);
  gate->open.store(true);
  holder.join();
  // The slot freed: the tenant is admitted again.
  EXPECT_EQ(manager.Get(request).shape(), (Shape{8, 32, 32}));

  // Byte budget: exactly one 8-frame response's worth. The second identical
  // request would exceed it and is rejected before any decode.
  TenantLimits budget;
  budget.decoded_byte_budget =
      8 * 32 * 32 * static_cast<std::int64_t>(sizeof(float));
  manager.SetTenantLimits("metered", budget);
  GetRequest metered = request;
  metered.tenant = "metered";
  EXPECT_EQ(manager.Get(metered).shape(), (Shape{8, 32, 32}));
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(metered); }),
            ErrorCode::kBudgetExhausted);
  EXPECT_EQ(manager.Stats().rejected_budget, 1);
  // Raising the budget unblocks the tenant.
  budget.decoded_byte_budget *= 4;
  manager.SetTenantLimits("metered", budget);
  EXPECT_EQ(manager.Get(metered).shape(), (Shape{8, 32, 32}));
}

TEST(ShardManager, HostileArchivesFailTypedThroughServingPath) {
  const Tensor field = MakeField(257);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  auto bytes = archive.Serialize();

  // Truncated footer / record area: opening the archive throws a typed
  // ArchiveError (StatusError), never a crash or misparse.
  for (const std::size_t len :
       {bytes.size() - 1, bytes.size() - 13, bytes.size() / 2}) {
    const std::vector<std::uint8_t> cut(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      (void)core::ArchiveReader::FromBytes(cut);
      FAIL() << "truncated archive (len " << len << ") parsed";
    } catch (const core::ArchiveError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kDataLoss) << "len " << len;
    }
  }

  // Lying varint payload length: the v2 scan must reject the stream instead
  // of indexing past its end.
  EXPECT_THROW((void)core::ArchiveReader::FromBytes(
                   SerializeAsV2(archive, /*lie_on_entry=*/1)),
               core::ArchiveError);

  // Bit-flipped payload served end to end: the corrupted record's dims varint
  // no longer matches its code stream, so decode throws; the front end
  // surfaces a typed error, the shard eventually quarantines, and a healthy
  // shard keeps serving. No crash, no hang, no OOM.
  auto flipped = bytes;
  const auto index_reader = core::ArchiveReader::FromBytes(bytes);
  const auto hit = index_reader.RecordsFor(0, 0, 8);
  ASSERT_EQ(hit.size(), 1u);
  flipped[index_reader.records()[hit[0]].offset] ^= 0x01;
  const auto bad_reader = core::ArchiveReader::FromBytes(flipped);
  const auto good_reader = core::ArchiveReader::FromBytes(bytes);
  auto bad_codec = api::Compressor::Create("sz");
  auto good_codec = api::Compressor::Create("sz");
  ManagerOptions options;
  options.quarantine_threshold = 2;
  ShardManager manager({{&bad_reader, bad_codec.get(), {}},
                        {&good_reader, good_codec.get(), {}}},
                       options);

  GetRequest request;
  request.t_end = 8;
  for (int i = 0; i < 2; ++i) {
    const ErrorCode code = CodeOf([&] { (void)manager.Get(request); });
    EXPECT_TRUE(code == ErrorCode::kInternal || code == ErrorCode::kDataLoss)
        << "request " << i << " code " << ErrorCodeName(code);
  }
  EXPECT_TRUE(manager.quarantined(0));
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(request); }),
            ErrorCode::kQuarantined);
  // Unflipped records on the same shard are NOT reachable while quarantined —
  // but the healthy shard serves the same query bit-for-bit.
  GetRequest healthy = request;
  healthy.shard = 1;
  EXPECT_EQ(manager.Get(healthy).shape(), (Shape{8, 32, 32}));

  // Zero-filled payload: decodes to an empty window; the scheduler's geometry
  // check rejects it as a typed error rather than returning torn bytes.
  auto zeroed = bytes;
  const auto& ref = index_reader.records()[hit[0]];
  std::fill(zeroed.begin() + static_cast<std::ptrdiff_t>(ref.offset),
            zeroed.begin() +
                static_cast<std::ptrdiff_t>(ref.offset + ref.length),
            std::uint8_t{0});
  const auto zero_reader = core::ArchiveReader::FromBytes(zeroed);
  auto zero_codec = api::Compressor::Create("sz");
  ShardManager zero_manager({{&zero_reader, zero_codec.get(), {}}});
  EXPECT_NE(CodeOf([&] { (void)zero_manager.Get(request); }),
            ErrorCode::kOk);
}

TEST(ShardManager, InvalidRequestsAndShutdownAreTyped) {
  const Tensor field = MakeField(263);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  auto codec = api::Compressor::Create("sz");
  ShardManager manager({{&reader, codec.get(), {}}});

  GetRequest bad_shard;
  bad_shard.shard = 7;
  bad_shard.t_end = 8;
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(bad_shard); }),
            ErrorCode::kInvalidArgument);
  GetRequest bad_range;
  bad_range.t_begin = 30;
  bad_range.t_end = 10;
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(bad_range); }),
            ErrorCode::kInvalidArgument);
  GetRequest bad_variable;
  bad_variable.variable = 9;
  bad_variable.t_end = 8;
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(bad_variable); }),
            ErrorCode::kInvalidArgument);
  // Admission rejections are not "admitted then failed".
  EXPECT_EQ(manager.Stats().admitted, 0);
  EXPECT_EQ(manager.Stats().failed, 0);

  manager.Shutdown();
  GetRequest request;
  request.t_end = 8;
  EXPECT_EQ(CodeOf([&] { (void)manager.Get(request); }),
            ErrorCode::kShutdown);
  manager.Shutdown();  // idempotent
}

TEST(DecodeSchedulerRobustness, FailingRecordFailsOnlyRequestsNeedingIt) {
  // Satellite: a worker-side decode failure must surface as a typed error on
  // exactly the queries that need the failing record; other records decode
  // normally, and the failure does not poison the single-flight table.
  const Tensor field = MakeField(269);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  auto codec = api::Compressor::Create("sz");
  auto ref_codec = api::Compressor::Create("sz");
  DecodeScheduler reference(&reader, ref_codec.get());

  const auto bad = reader.RecordsFor(0, 16, 24);  // the t0 = 16 record
  ASSERT_EQ(bad.size(), 1u);

  FaultInjector injector;
  injector.Arm(FaultInjector::Kind::kCorrupt, /*count=*/999,
               static_cast<std::int64_t>(bad[0]));
  ScheduleOptions options;
  options.workers = 2;  // failure crosses the ParallelFor fan-out
  options.fault_injector = &injector;
  DecodeScheduler scheduler(&reader, codec.get(), options);

  // Queries avoiding the bad record are untouched...
  const Tensor head = scheduler.Get(0, 0, 8);
  const Tensor tail = scheduler.Get(0, 32, 40);
  const Tensor want_head = reference.Get(0, 0, 8);
  EXPECT_EQ(std::memcmp(head.data(), want_head.data(),
                        static_cast<std::size_t>(head.numel()) *
                            sizeof(float)),
            0);
  // ...queries needing it fail with the injected typed error, repeatedly
  // (each attempt decodes fresh — a failure is never cached)...
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(CodeOf([&] { (void)scheduler.Get(0, 16, 24); }),
              ErrorCode::kDataLoss)
        << "attempt " << i;
    EXPECT_EQ(CodeOf([&] { (void)scheduler.Get(0, 0, 40); }),
              ErrorCode::kDataLoss)
        << "attempt " << i;
  }
  EXPECT_GE(scheduler.decode_failures(), 4);
  // ...and the spanning query's HEALTHY records were still decoded and
  // cached, so serving them again costs nothing new.
  const Tensor again = scheduler.Get(0, 32, 40);
  EXPECT_EQ(std::memcmp(again.data(), tail.data(),
                        static_cast<std::size_t>(again.numel()) *
                            sizeof(float)),
            0);

  // Once the fault clears, the same record serves fine: no poisoned state.
  injector.Disarm();
  const Tensor healed = scheduler.Get(0, 16, 24);
  const Tensor want = reference.Get(0, 16, 24);
  EXPECT_EQ(std::memcmp(healed.data(), want.data(),
                        static_cast<std::size_t>(healed.numel()) *
                            sizeof(float)),
            0);
}

TEST(DecodeSchedulerRobustness, ConcurrentWaitersSeeOwnersTypedError) {
  // Concurrent queries de-duplicated onto a failing decode: the owner and
  // every waiter must all terminate with the same typed error (no hang), and
  // the record must decode cleanly afterwards.
  const Tensor field = MakeField(271);
  const core::DatasetArchive archive = EncodeSzArchive(field);
  const auto reader = core::ArchiveReader::FromBytes(archive.Serialize());
  auto codec = api::Compressor::Create("sz");

  FaultInjector injector;
  injector.Arm(FaultInjector::Kind::kCorrupt, /*count=*/999);
  ScheduleOptions options;
  options.fault_injector = &injector;
  DecodeScheduler scheduler(&reader, codec.get(), options);
  std::atomic<int> typed_failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      try {
        (void)scheduler.Get(0, 0, 40);
      } catch (const StatusError& e) {
        if (e.code() == ErrorCode::kDataLoss) typed_failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(typed_failures.load(), 4);

  injector.Disarm();
  EXPECT_EQ(scheduler.Get(0, 0, 40).shape(), (Shape{40, 32, 32}));
}

}  // namespace
}  // namespace glsc::serve
