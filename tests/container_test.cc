// Tests for the on-disk archive format: serialization round-trips, format
// validation, and end-to-end file compress -> write -> read -> decompress.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/container.h"
#include "core/registry.h"
#include "tensor/metrics.h"

namespace glsc::core {
namespace {

CompressedWindow MakeFakeWindow(Rng& rng) {
  CompressedWindow w;
  w.keyframes.y_stream.resize(40 + rng.UniformInt(100));
  for (auto& b : w.keyframes.y_stream) {
    b = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  w.keyframes.z_stream.resize(10 + rng.UniformInt(30));
  for (auto& b : w.keyframes.z_stream) {
    b = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  w.keyframes.y_shape = {4, 8, 4, 4};
  w.keyframes.z_shape = {4, 4, 1, 1};
  w.window_shape = {8, 16, 16};
  w.sample_seed = static_cast<std::uint32_t>(rng.NextU64());
  w.corrections.resize(8);
  for (auto& c : w.corrections) {
    c.resize(rng.UniformInt(50));
    for (auto& b : c) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  return w;
}

bool WindowsEqual(const CompressedWindow& a, const CompressedWindow& b) {
  return a.keyframes.y_stream == b.keyframes.y_stream &&
         a.keyframes.z_stream == b.keyframes.z_stream &&
         a.keyframes.y_shape == b.keyframes.y_shape &&
         a.keyframes.z_shape == b.keyframes.z_shape &&
         a.window_shape == b.window_shape && a.sample_seed == b.sample_seed &&
         a.corrections == b.corrections;
}

TEST(Container, WindowRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const CompressedWindow original = MakeFakeWindow(rng);
    ByteWriter out;
    SerializeWindow(original, &out);
    ByteReader in(out.bytes());
    const CompressedWindow back = DeserializeWindow(&in);
    EXPECT_TRUE(WindowsEqual(original, back)) << "iteration " << i;
    EXPECT_TRUE(in.AtEnd());
  }
}

TEST(Container, ArchiveRoundTrip) {
  Rng rng(5);
  std::vector<data::FrameNorm> norms(2 * 16);
  for (auto& n : norms) {
    n.mean = rng.NormalF();
    n.range = 1.0f + rng.UniformF();
  }
  DatasetArchive archive({2, 16, 16, 16}, 8, norms);
  archive.Add(0, 0, MakeFakeWindow(rng));
  archive.Add(0, 8, MakeFakeWindow(rng));
  archive.Add(1, 0, MakeFakeWindow(rng));

  const auto bytes = archive.Serialize();
  const DatasetArchive back = DatasetArchive::Deserialize(bytes);
  EXPECT_EQ(back.dataset_shape(), archive.dataset_shape());
  EXPECT_EQ(back.window(), 8);
  ASSERT_EQ(back.entries().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.entries()[i].variable, archive.entries()[i].variable);
    EXPECT_EQ(back.entries()[i].t0, archive.entries()[i].t0);
    EXPECT_TRUE(
        WindowsEqual(back.entries()[i].window, archive.entries()[i].window));
  }
  EXPECT_FLOAT_EQ(back.norm(1, 3).mean, archive.norm(1, 3).mean);
}

TEST(Container, RejectsCorruptMagic) {
  Rng rng(7);
  DatasetArchive archive({1, 8, 16, 16}, 8,
                         std::vector<data::FrameNorm>(8));
  auto bytes = archive.Serialize();
  bytes[0] = 'X';
  EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error);
}

TEST(Container, RejectsUnknownVersion) {
  DatasetArchive archive({1, 8, 16, 16}, 8,
                         std::vector<data::FrameNorm>(8));
  auto bytes = archive.Serialize();
  bytes[4] = 99;  // version byte
  EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error);
}

TEST(Container, EndToEndFileRoundTrip) {
  // Train a tiny pipeline, archive a dataset to disk, read it back with a
  // fresh compressor instance (same artifact), decompress and compare.
  data::FieldSpec spec;
  spec.frames = 16;
  spec.height = 16;
  spec.width = 16;
  spec.seed = 31;
  data::SequenceDataset dataset(data::GenerateClimate(spec));

  GlscConfig config;
  config.vae.latent_channels = 4;
  config.vae.hidden_channels = 6;
  config.vae.hyper_channels = 2;
  config.unet.latent_channels = 4;
  config.unet.model_channels = 8;
  config.unet.heads = 2;
  config.schedule_steps = 30;
  config.window = 8;
  config.interval = 3;
  config.sample_steps = 4;
  TrainBudget budget;
  budget.vae.iterations = 60;
  budget.vae.crop = 16;
  budget.vae.log_every = 0;
  budget.diffusion.iterations = 40;
  budget.diffusion.crop = 16;
  budget.diffusion.log_every = 0;
  budget.pca_fit_windows = 2;
  auto compressor = GetOrTrainGlsc(dataset, config, budget,
                                   "/tmp/glsc_container_artifacts",
                                   "container_e2e");

  const DatasetArchive archive =
      CompressDataset(compressor.get(), dataset, 0.2);
  const std::string path = "/tmp/glsc_container_test.glsca";
  archive.WriteFile(path);

  // Fresh compressor from the same artifact; fresh archive from disk.
  auto other = GetOrTrainGlsc(dataset, config, budget,
                              "/tmp/glsc_container_artifacts",
                              "container_e2e");
  const DatasetArchive loaded = DatasetArchive::ReadFile(path);
  const Tensor decompressed = loaded.DecompressAll(other.get());
  ASSERT_EQ(decompressed.shape(), dataset.raw().shape());

  // Same bound guarantee transfers through the file: per-frame normalized L2
  // <= tau means physical error <= tau * range.
  const std::int64_t hw = 16 * 16;
  for (std::int64_t v = 0; v < dataset.variables(); ++v) {
    for (std::int64_t t = 0; t < dataset.frames(); ++t) {
      double l2 = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double d =
            dataset.raw()[(v * 16 + t) * hw + i] -
            decompressed[(v * 16 + t) * hw + i];
        l2 += d * d;
      }
      EXPECT_LE(std::sqrt(l2),
                0.2 * dataset.norm(v, t).range * (1.0 + 1e-3) + 1e-9)
          << "v=" << v << " t=" << t;
    }
  }
  std::filesystem::remove(path);
  std::filesystem::remove_all("/tmp/glsc_container_artifacts");
}

TEST(Container, ParallelCompressionMatchesSerial) {
  // Two worker instances loaded from one artifact must produce the exact
  // archive the serial path produces (content-derived seeds, lossless
  // coding, deterministic DDIM).
  data::FieldSpec spec;
  spec.variables = 2;
  spec.frames = 16;
  spec.height = 16;
  spec.width = 16;
  spec.seed = 41;
  data::SequenceDataset dataset(data::GenerateClimate(spec));

  GlscConfig config;
  config.vae.latent_channels = 4;
  config.vae.hidden_channels = 6;
  config.vae.hyper_channels = 2;
  config.unet.latent_channels = 4;
  config.unet.model_channels = 8;
  config.unet.heads = 2;
  config.schedule_steps = 30;
  config.window = 8;
  config.interval = 3;
  config.sample_steps = 4;
  TrainBudget budget;
  budget.vae.iterations = 40;
  budget.vae.crop = 16;
  budget.vae.log_every = 0;
  budget.diffusion.iterations = 30;
  budget.diffusion.crop = 16;
  budget.diffusion.log_every = 0;
  budget.pca_fit_windows = 1;
  auto primary = GetOrTrainGlsc(dataset, config, budget,
                                "/tmp/glsc_par_artifacts", "par_test");
  auto secondary = GetOrTrainGlsc(dataset, config, budget,
                                  "/tmp/glsc_par_artifacts", "par_test");

  const DatasetArchive serial = CompressDataset(primary.get(), dataset, 0.3);
  const DatasetArchive parallel = CompressDatasetParallel(
      {primary.get(), secondary.get()}, dataset, 0.3);

  EXPECT_EQ(serial.Serialize(), parallel.Serialize());
  std::filesystem::remove_all("/tmp/glsc_par_artifacts");
}

TEST(Container, ArchiveSizeMatchesAccountedBytes) {
  Rng rng(11);
  DatasetArchive archive({1, 8, 16, 16}, 8,
                         std::vector<data::FrameNorm>(8));
  CompressedWindow w = MakeFakeWindow(rng);
  const std::size_t accounted = w.TotalBytes();
  archive.Add(0, 0, w);
  const auto bytes = archive.Serialize();
  // On-disk size should be close to the accounted size (within the small
  // container framing: magic, version, dataset dims, record shapes).
  EXPECT_LT(bytes.size(), accounted + 160);
}

}  // namespace
}  // namespace glsc::core
