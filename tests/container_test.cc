// Tests for the on-disk archive format: serialization round-trips, format
// validation (corrupt/truncated/hostile input), v1 back-compat, and
// end-to-end file compress -> write -> read -> decompress.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/archive_reader.h"
#include "core/container.h"
#include "core/registry.h"
#include "tensor/metrics.h"

namespace glsc::core {
namespace {

CompressedWindow MakeFakeWindow(Rng& rng) {
  CompressedWindow w;
  w.keyframes.y_stream.resize(40 + rng.UniformInt(100));
  for (auto& b : w.keyframes.y_stream) {
    b = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  w.keyframes.z_stream.resize(10 + rng.UniformInt(30));
  for (auto& b : w.keyframes.z_stream) {
    b = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  w.keyframes.y_shape = {4, 8, 4, 4};
  w.keyframes.z_shape = {4, 4, 1, 1};
  w.window_shape = {8, 16, 16};
  w.sample_seed = static_cast<std::uint32_t>(rng.NextU64());
  w.corrections.resize(8);
  for (auto& c : w.corrections) {
    c.resize(rng.UniformInt(50));
    for (auto& b : c) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  return w;
}

std::vector<std::uint8_t> Payload(const CompressedWindow& window) {
  ByteWriter out;
  SerializeWindow(window, &out);
  return out.Release();
}

bool WindowsEqual(const CompressedWindow& a, const CompressedWindow& b) {
  return a.keyframes.y_stream == b.keyframes.y_stream &&
         a.keyframes.z_stream == b.keyframes.z_stream &&
         a.keyframes.y_shape == b.keyframes.y_shape &&
         a.keyframes.z_shape == b.keyframes.z_shape &&
         a.window_shape == b.window_shape && a.sample_seed == b.sample_seed &&
         a.corrections == b.corrections;
}

TEST(Container, WindowRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const CompressedWindow original = MakeFakeWindow(rng);
    ByteWriter out;
    SerializeWindow(original, &out);
    ByteReader in(out.bytes());
    const CompressedWindow back = DeserializeWindow(&in);
    EXPECT_TRUE(WindowsEqual(original, back)) << "iteration " << i;
    EXPECT_TRUE(in.AtEnd());
  }
}

TEST(Container, ArchiveRoundTrip) {
  Rng rng(5);
  std::vector<data::FrameNorm> norms(2 * 16);
  for (auto& n : norms) {
    n.mean = rng.NormalF();
    n.range = 1.0f + rng.UniformF();
  }
  DatasetArchive archive("glsc", {2, 16, 16, 16}, 8, norms);
  archive.Add(0, 0, 8, Payload(MakeFakeWindow(rng)));
  archive.Add(0, 8, 8, Payload(MakeFakeWindow(rng)));
  archive.Add(1, 0, 3, Payload(MakeFakeWindow(rng)));  // padded tail record

  const auto bytes = archive.Serialize();
  const DatasetArchive back = DatasetArchive::Deserialize(bytes);
  EXPECT_EQ(back.codec(), "glsc");
  EXPECT_EQ(back.dataset_shape(), archive.dataset_shape());
  EXPECT_EQ(back.window(), 8);
  ASSERT_EQ(back.entries().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.entries()[i].variable, archive.entries()[i].variable);
    EXPECT_EQ(back.entries()[i].t0, archive.entries()[i].t0);
    EXPECT_EQ(back.entries()[i].valid_frames,
              archive.entries()[i].valid_frames);
    EXPECT_EQ(back.entries()[i].payload, archive.entries()[i].payload);
  }
  EXPECT_FLOAT_EQ(back.norm(1, 3).mean, archive.norm(1, 3).mean);
}

TEST(Container, V1ArchiveStillLoads) {
  // Hand-assemble a version-1 archive (GLSC-only records, no codec id, no
  // valid_frames) and check it deserializes into equivalent v2 entries.
  Rng rng(17);
  const CompressedWindow w0 = MakeFakeWindow(rng);
  const CompressedWindow w1 = MakeFakeWindow(rng);

  ByteWriter v1;
  v1.PutBytes("GLSC", 4);
  v1.PutU8(1);  // legacy version
  for (const std::uint64_t d : {1ull, 16ull, 16ull, 16ull}) v1.PutU64(d);
  v1.PutU64(8);  // window
  for (int i = 0; i < 16; ++i) {
    v1.PutF32(static_cast<float>(i));
    v1.PutF32(1.0f + static_cast<float>(i));
  }
  v1.PutVarU64(2);
  v1.PutVarU64(0);  // variable
  v1.PutVarU64(0);  // t0
  SerializeWindow(w0, &v1);
  v1.PutVarU64(0);
  v1.PutVarU64(8);
  SerializeWindow(w1, &v1);

  const DatasetArchive archive = DatasetArchive::Deserialize(v1.bytes());
  EXPECT_EQ(archive.codec(), "glsc");
  EXPECT_EQ(archive.dataset_shape(), (Shape{1, 16, 16, 16}));
  ASSERT_EQ(archive.entries().size(), 2u);
  // v1 records are full windows; the record body is the "glsc" payload.
  EXPECT_EQ(archive.entries()[0].valid_frames, 8);
  EXPECT_EQ(archive.entries()[0].payload, Payload(w0));
  EXPECT_EQ(archive.entries()[1].t0, 8);
  EXPECT_EQ(archive.entries()[1].payload, Payload(w1));
  EXPECT_FLOAT_EQ(archive.norm(0, 3).mean, 3.0f);
}

TEST(Container, RejectsCorruptMagic) {
  DatasetArchive archive("glsc", {1, 8, 16, 16}, 8,
                         std::vector<data::FrameNorm>(8));
  auto bytes = archive.Serialize();
  bytes[0] = 'X';
  EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error);
}

TEST(Container, RejectsUnknownVersion) {
  DatasetArchive archive("glsc", {1, 8, 16, 16}, 8,
                         std::vector<data::FrameNorm>(8));
  auto bytes = archive.Serialize();
  bytes[4] = 99;  // version byte
  EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error);
}

TEST(Container, TruncatedArchiveThrowsInsteadOfCrashing) {
  Rng rng(23);
  DatasetArchive archive("glsc", {1, 8, 16, 16}, 8,
                         std::vector<data::FrameNorm>(8));
  archive.Add(0, 0, 8, Payload(MakeFakeWindow(rng)));
  const auto bytes = archive.Serialize();
  // Every truncation point must raise, never OOM or read out of bounds.
  for (std::size_t len : {bytes.size() - 1, bytes.size() / 2,
                          bytes.size() / 4, std::size_t{6}}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(DatasetArchive::Deserialize(cut), std::runtime_error)
        << "length " << len;
  }
}

TEST(Container, EmptyAndTinyInputsThrowTyped) {
  // Fuzzer-found (UBSan): a zero-byte input used to reach MemorySource with
  // a null backing pointer and hand memcpy null arguments. Empty and
  // sub-magic-sized inputs must raise a typed ArchiveError through both
  // entry points, never touch memory.
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{4}, std::size_t{5}}) {
    const std::vector<std::uint8_t> bytes(len, 'G');
    EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error)
        << "Deserialize, length " << len;
    std::vector<std::uint8_t> copy = bytes;
    try {
      ArchiveReader::FromBytes(std::move(copy));
      FAIL() << "FromBytes accepted a " << len << "-byte archive";
    } catch (const ArchiveError& e) {
      EXPECT_TRUE(e.fault() == ArchiveFault::kNotAnArchive ||
                  e.fault() == ArchiveFault::kTruncated)
          << "length " << len;
    }
  }
}

TEST(Container, HostileLengthsThrowInsteadOfAllocating) {
  // A v1-style record whose y-stream length claims ~2^60 bytes: the varint
  // validation must reject it before any resize happens.
  ByteWriter hostile;
  hostile.PutBytes("GLSC", 4);
  hostile.PutU8(1);
  for (const std::uint64_t d : {1ull, 8ull, 16ull, 16ull}) hostile.PutU64(d);
  hostile.PutU64(8);
  for (int i = 0; i < 8; ++i) {
    hostile.PutF32(0.0f);
    hostile.PutF32(1.0f);
  }
  hostile.PutVarU64(1);
  hostile.PutVarU64(0);
  hostile.PutVarU64(0);
  hostile.PutVarU64(1ull << 60);  // y-stream "length"
  hostile.PutU8(0);
  EXPECT_THROW(DatasetArchive::Deserialize(hostile.bytes()),
               std::runtime_error);

  // Hostile header: dataset dims whose norm count could never fit the input.
  ByteWriter huge;
  huge.PutBytes("GLSC", 4);
  huge.PutU8(2);
  huge.PutString("glsc");
  huge.PutU64(1ull << 40);  // V
  huge.PutU64(1ull << 40);  // T
  huge.PutU64(16);
  huge.PutU64(16);
  huge.PutU64(8);
  EXPECT_THROW(DatasetArchive::Deserialize(huge.bytes()), std::runtime_error);

  // V = T = 2^32 would wrap V*T to zero and sneak past a naive norm-count
  // guard; the per-dimension cap must reject it first.
  ByteWriter wrap;
  wrap.PutBytes("GLSC", 4);
  wrap.PutU8(2);
  wrap.PutString("glsc");
  wrap.PutU64(1ull << 32);  // V
  wrap.PutU64(1ull << 32);  // T
  wrap.PutU64(16);
  wrap.PutU64(16);
  wrap.PutU64(8);
  EXPECT_THROW(DatasetArchive::Deserialize(wrap.bytes()), std::runtime_error);
}

TEST(Container, RejectsRecordOutsideDatasetBounds) {
  Rng rng(29);
  DatasetArchive archive("glsc", {1, 8, 16, 16}, 8,
                         std::vector<data::FrameNorm>(8));
  archive.Add(0, 0, 8, Payload(MakeFakeWindow(rng)));
  // The byte surgery below assumes the v3 layout (inline norms + leading
  // record count); v4 hostile-index coverage lives in container_v4_test.cc.
  auto bytes = archive.Serialize({.version = 3});
  // Deserialize-but-corrupt path: patch the record's variable varint (first
  // byte after the record count) to 7, outside V=1.
  const DatasetArchive ok = DatasetArchive::Deserialize(bytes);
  ASSERT_EQ(ok.entries().size(), 1u);
  // Locate the record area: header is magic(4)+version(1)+codec(1+4)+
  // dims(32)+window(8)+norms(64)+count(1) -> variable byte follows.
  const std::size_t var_at = 4 + 1 + 5 + 32 + 8 + 64 + 1;
  ASSERT_EQ(bytes[var_at], 0u);
  bytes[var_at] = 7;
  EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error);
}

TEST(Container, EndToEndFileRoundTrip) {
  // Train a tiny pipeline, archive a dataset to disk, read it back with a
  // fresh compressor instance (same artifact), decompress and compare. The
  // artifacts dir is deliberately nested-and-missing: GetOrTrainGlsc must
  // create it rather than silently dropping the cache (regression).
  data::FieldSpec spec;
  spec.frames = 16;
  spec.height = 16;
  spec.width = 16;
  spec.seed = 31;
  data::SequenceDataset dataset(data::GenerateClimate(spec));

  GlscConfig config;
  config.vae.latent_channels = 4;
  config.vae.hidden_channels = 6;
  config.vae.hyper_channels = 2;
  config.unet.latent_channels = 4;
  config.unet.model_channels = 8;
  config.unet.heads = 2;
  config.schedule_steps = 30;
  config.window = 8;
  config.interval = 3;
  config.sample_steps = 4;
  TrainBudget budget;
  budget.vae.iterations = 60;
  budget.vae.crop = 16;
  budget.vae.log_every = 0;
  budget.diffusion.iterations = 40;
  budget.diffusion.crop = 16;
  budget.diffusion.log_every = 0;
  budget.pca_fit_windows = 2;
  const std::string artifacts = "/tmp/glsc_container_artifacts/nested/deeper";
  std::filesystem::remove_all("/tmp/glsc_container_artifacts");
  auto compressor =
      GetOrTrainGlsc(dataset, config, budget, artifacts, "container_e2e");
  EXPECT_TRUE(FileExists(ArtifactPath(artifacts, "container_e2e")));

  const DatasetArchive archive =
      CompressDataset(compressor.get(), dataset, 0.2);
  EXPECT_EQ(archive.codec(), "glsc");
  const std::string path = "/tmp/glsc_container_test.glsca";
  archive.WriteFile(path);

  // Fresh compressor from the same artifact; fresh archive from disk.
  auto other = GetOrTrainGlsc(dataset, config, budget, artifacts,
                              "container_e2e");
  const DatasetArchive loaded = DatasetArchive::ReadFile(path);
  const Tensor decompressed = loaded.DecompressAll(other.get());
  ASSERT_EQ(decompressed.shape(), dataset.raw().shape());

  // Same bound guarantee transfers through the file: per-frame normalized L2
  // <= tau means physical error <= tau * range.
  const std::int64_t hw = 16 * 16;
  for (std::int64_t v = 0; v < dataset.variables(); ++v) {
    for (std::int64_t t = 0; t < dataset.frames(); ++t) {
      double l2 = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double d =
            dataset.raw()[(v * 16 + t) * hw + i] -
            decompressed[(v * 16 + t) * hw + i];
        l2 += d * d;
      }
      EXPECT_LE(std::sqrt(l2),
                0.2 * dataset.norm(v, t).range * (1.0 + 1e-3) + 1e-9)
          << "v=" << v << " t=" << t;
    }
  }
  std::filesystem::remove(path);
  std::filesystem::remove_all("/tmp/glsc_container_artifacts");
}

TEST(Container, ParallelCompressionMatchesSerial) {
  // Two worker instances loaded from one artifact must produce the exact
  // archive the serial path produces (content-derived seeds, lossless
  // coding, deterministic DDIM).
  data::FieldSpec spec;
  spec.variables = 2;
  spec.frames = 16;
  spec.height = 16;
  spec.width = 16;
  spec.seed = 41;
  data::SequenceDataset dataset(data::GenerateClimate(spec));

  GlscConfig config;
  config.vae.latent_channels = 4;
  config.vae.hidden_channels = 6;
  config.vae.hyper_channels = 2;
  config.unet.latent_channels = 4;
  config.unet.model_channels = 8;
  config.unet.heads = 2;
  config.schedule_steps = 30;
  config.window = 8;
  config.interval = 3;
  config.sample_steps = 4;
  TrainBudget budget;
  budget.vae.iterations = 40;
  budget.vae.crop = 16;
  budget.vae.log_every = 0;
  budget.diffusion.iterations = 30;
  budget.diffusion.crop = 16;
  budget.diffusion.log_every = 0;
  budget.pca_fit_windows = 1;
  auto primary = GetOrTrainGlsc(dataset, config, budget,
                                "/tmp/glsc_par_artifacts", "par_test");
  auto secondary = GetOrTrainGlsc(dataset, config, budget,
                                  "/tmp/glsc_par_artifacts", "par_test");

  const DatasetArchive serial = CompressDataset(primary.get(), dataset, 0.3);
  const DatasetArchive parallel = CompressDatasetParallel(
      {primary.get(), secondary.get()}, dataset, 0.3);

  EXPECT_EQ(serial.Serialize(), parallel.Serialize());
  std::filesystem::remove_all("/tmp/glsc_par_artifacts");
}

TEST(Container, ArchiveSizeMatchesAccountedBytes) {
  Rng rng(11);
  DatasetArchive archive("glsc", {1, 8, 16, 16}, 8,
                         std::vector<data::FrameNorm>(8));
  CompressedWindow w = MakeFakeWindow(rng);
  const std::size_t accounted = w.TotalBytes();
  archive.Add(0, 0, 8, Payload(w));
  const auto bytes = archive.Serialize();
  // On-disk size should be close to the accounted size (within the small
  // container framing: magic, version, codec id, dataset dims, record
  // shapes).
  EXPECT_LT(bytes.size(), accounted + 160);
}

}  // namespace
}  // namespace glsc::core
