// Replays fuzz/corpus-regressions/* through every fuzz harness entry point
// in the normal ctest run. The harness TUs are compiled into this binary
// with GLSC_FUZZ_REGRESSION_TU, which strips their conflicting extern "C"
// LLVMFuzzerTestOneInput wrappers (fuzz/fuzz_entry_points.h). A harness that
// crashes or aborts on any corpus file fails the suite — past fuzzer catches
// stay fixed without needing clang or libFuzzer in the container.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "../fuzz/fuzz_entry_points.h"

namespace glsc {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles() {
  const fs::path dir = fs::path(GLSC_REPO_ROOT) / "fuzz" / "corpus-regressions";
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".bin") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> ReadBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

using FuzzEntry = int (*)(const std::uint8_t*, std::size_t);

struct Harness {
  const char* name;
  FuzzEntry entry;
};

constexpr Harness kHarnesses[] = {
    {"archive_deserialize", &fuzz::FuzzArchiveDeserialize},
    {"archive_reader", &fuzz::FuzzArchiveReader},
    {"range_coder", &fuzz::FuzzRangeCoder},
};

TEST(FuzzRegression, CorpusIsNonEmpty) {
  // An empty corpus would make the replay below pass vacuously.
  EXPECT_GE(CorpusFiles().size(), 5u);
}

TEST(FuzzRegression, EveryHarnessSurvivesEveryCorpusFile) {
  for (const fs::path& file : CorpusFiles()) {
    const std::vector<std::uint8_t> bytes = ReadBytes(file);
    for (const Harness& harness : kHarnesses) {
      SCOPED_TRACE(std::string(harness.name) + " <- " +
                   file.filename().string());
      // data() of an empty vector may be null; the harnesses must take it.
      EXPECT_EQ(0, harness.entry(bytes.data(), bytes.size()));
    }
  }
}

TEST(FuzzRegression, HarnessesAcceptNullEmptyInput) {
  for (const Harness& harness : kHarnesses) {
    SCOPED_TRACE(harness.name);
    EXPECT_EQ(0, harness.entry(nullptr, 0));
  }
}

}  // namespace
}  // namespace glsc
