#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "util/bytes.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace glsc {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedSmallRange) {
  Rng rng(8);
  int counts[5] = {};
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.UniformInt(5)];
  for (const int c : counts) {
    EXPECT_NEAR(c, draws / 5.0, 5.0 * std::sqrt(draws / 5.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, ForkIndependence) {
  Rng a(10);
  Rng b = a.Fork();
  // The fork should not replay the parent's stream.
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xCDEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI32(-12345);
  w.PutF32(3.14159f);
  w.PutF64(-2.718281828459045);
  w.PutString("glsc");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU16(), 0xCDEF);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetI32(), -12345);
  EXPECT_FLOAT_EQ(r.GetF32(), 3.14159f);
  EXPECT_DOUBLE_EQ(r.GetF64(), -2.718281828459045);
  EXPECT_EQ(r.GetString(), "glsc");
  EXPECT_TRUE(r.AtEnd());
}

class VarintTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(VarintTest, RoundTrip) {
  const std::int64_t v = GetParam();
  ByteWriter w;
  w.PutVarI64(v);
  if (v >= 0) w.PutVarU64(static_cast<std::uint64_t>(v));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetVarI64(), v);
  if (v >= 0) {
    EXPECT_EQ(r.GetVarU64(), static_cast<std::uint64_t>(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeValues, VarintTest,
    ::testing::Values(0, 1, -1, 127, 128, -128, 300, -300, 1u << 20,
                      -(1 << 20), INT64_MAX, INT64_MIN + 1));

TEST(Bytes, UnderrunThrows) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.bytes());
  r.GetU8();
  EXPECT_THROW(r.GetU32(), std::runtime_error);
}

TEST(Bytes, FileRoundTrip) {
  const std::string path = "/tmp/glsc_test_bytes.bin";
  std::vector<std::uint8_t> data{1, 2, 3, 250};
  WriteFileBytes(path, data);
  EXPECT_TRUE(FileExists(path));
  std::vector<std::uint8_t> back;
  EXPECT_TRUE(ReadFileBytes(path, &back));
  EXPECT_EQ(back, data);
  std::filesystem::remove(path);
  EXPECT_FALSE(ReadFileBytes(path, &back));
}

TEST(Flags, Parsing) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7.5", "--gamma",
                        "--name=x"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0.0), 7.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("name", ""), "x");
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A ParallelFor issued from inside a pool task must not submit-and-block:
  // with every worker occupied by an outer item, the inner helpers' futures
  // could never resolve (regression: this test deadlocked). The nested call
  // runs inline on the worker instead.
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.ParallelFor(8, [&](std::size_t) {
    pool.ParallelFor(4, [&](std::size_t) { inner++; });
  });
  EXPECT_EQ(inner.load(), 32);

  // Detection is per-pool and per-thread.
  EXPECT_FALSE(pool.InWorkerThread());
  auto fut = pool.Submit([&] { return pool.InWorkerThread(); });
  EXPECT_TRUE(fut.get());
  ThreadPool other(1);
  auto cross = other.Submit([&] { return pool.InWorkerThread(); });
  EXPECT_FALSE(cross.get());
}

TEST(ThreadPool, ZeroAndOneItems) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
  int count = 0;
  pool.ParallelFor(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  (void)sink;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds() * 1000.0 - 1e-6);
}

}  // namespace
}  // namespace glsc
