// Tests for the unified codec API: factory registry, capability declarations,
// streaming EncodeSession/DecodeSession (chunking, tail padding, parallel
// fan-out, byte-identity vs the one-shot path), and the acceptance round trip
// of every registered codec over a [2, 40, 32, 32] stream whose T=40 is not
// divisible by the 16-frame window.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "api/adapters.h"
#include "api/session.h"
#include "core/container.h"
#include "data/field_generators.h"
#include "tensor/metrics.h"

namespace glsc::api {
namespace {

// [V, t0:t1, H, W] slice of a [V, T, H, W] field.
Tensor TimeSlice(const Tensor& field, std::int64_t t0, std::int64_t t1) {
  const std::int64_t v = field.dim(0), t = field.dim(1);
  const std::int64_t hw = field.dim(2) * field.dim(3);
  Tensor out({v, t1 - t0, field.dim(2), field.dim(3)});
  for (std::int64_t vi = 0; vi < v; ++vi) {
    std::copy_n(field.data() + (vi * t + t0) * hw, (t1 - t0) * hw,
                out.data() + vi * (t1 - t0) * hw);
  }
  return out;
}

// Streams `field` through a fresh session in pushes of `chunk` frames.
core::DatasetArchive StreamIn(Compressor* codec, const Tensor& field,
                              std::int64_t chunk,
                              const SessionOptions& options) {
  EncodeSession session(codec, field.dim(0), field.dim(2), field.dim(3),
                        options);
  for (std::int64_t t0 = 0; t0 < field.dim(1); t0 += chunk) {
    session.Push(TimeSlice(field, t0, std::min(field.dim(1), t0 + chunk)));
  }
  return session.Finish();
}

void ExpectPointwiseBound(const Tensor& raw, const Tensor& recon,
                          const data::SequenceDataset& dataset,
                          double rel_bound) {
  const std::int64_t hw = raw.dim(2) * raw.dim(3);
  for (std::int64_t v = 0; v < raw.dim(0); ++v) {
    for (std::int64_t t = 0; t < raw.dim(1); ++t) {
      const double limit =
          rel_bound * dataset.norm(v, t).range * (1.0 + 1e-5);
      const float* a = raw.data() + (v * raw.dim(1) + t) * hw;
      const float* b = recon.data() + (v * raw.dim(1) + t) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        ASSERT_LE(std::fabs(a[i] - b[i]), limit) << "v=" << v << " t=" << t;
      }
    }
  }
}

TEST(Registry, ListsAllSixAndRejectsUnknown) {
  const auto names = RegisteredCompressors();
  for (const char* expected : {"glsc", "sz", "zfp", "cdc", "gcd", "vae_sr"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  for (const auto& name : names) {
    const auto codec = Compressor::Create(name);
    ASSERT_NE(codec, nullptr);
    EXPECT_EQ(codec->name(), name);
    EXPECT_GT(codec->window(), 0);
  }
  EXPECT_THROW(Compressor::Create("no_such_codec"), std::runtime_error);
}

TEST(Registry, CapabilitiesDeclareBoundsAndModelNeeds) {
  const auto sz = Compressor::Create("sz");
  EXPECT_TRUE(sz->capabilities().model_free);
  EXPECT_TRUE(sz->capabilities().Supports(ErrorBoundMode::kAbsolute));
  EXPECT_TRUE(sz->capabilities().Supports(ErrorBoundMode::kRelative));
  EXPECT_FALSE(sz->capabilities().Supports(ErrorBoundMode::kPointwiseL2));

  const auto glsc = Compressor::Create("glsc");
  EXPECT_FALSE(glsc->capabilities().model_free);
  EXPECT_TRUE(glsc->capabilities().Supports(ErrorBoundMode::kPointwiseL2));
  EXPECT_TRUE(glsc->capabilities().Supports(ErrorBoundMode::kNone));

  for (const char* learned : {"cdc", "gcd", "vae_sr"}) {
    const auto codec = Compressor::Create(learned);
    EXPECT_FALSE(codec->capabilities().model_free) << learned;
    EXPECT_TRUE(codec->capabilities().Supports(ErrorBoundMode::kNone))
        << learned;
  }

  // Sessions refuse bound modes the codec cannot honor.
  SessionOptions unsupported;
  unsupported.bound = {ErrorBoundMode::kPointwiseL2, 0.1};
  auto zfp = Compressor::Create("zfp");
  EXPECT_THROW(EncodeSession(zfp.get(), 1, 16, 16, unsupported),
               std::runtime_error);
}

TEST(Session, RuleBasedStreamRoundTripWithPartialTail) {
  data::FieldSpec spec;
  spec.variables = 2;
  spec.frames = 40;  // window 16 -> full windows at 0, 16 and a tail of 8
  spec.height = 32;
  spec.width = 32;
  spec.seed = 71;
  const Tensor field = data::GenerateClimate(spec);
  data::SequenceDataset dataset(field.Clone());

  for (const char* name : {"sz", "zfp"}) {
    auto codec = Compressor::Create(name);
    SessionOptions options;
    options.bound = {ErrorBoundMode::kRelative, 0.01};
    const core::DatasetArchive archive =
        StreamIn(codec.get(), field, /*chunk=*/7, options);

    EXPECT_EQ(archive.codec(), name);
    EXPECT_EQ(archive.dataset_shape(), field.shape());
    ASSERT_EQ(archive.entries().size(), 6u) << name;  // 3 slabs x 2 variables
    std::int64_t tail_records = 0;
    for (const auto& entry : archive.entries()) {
      if (entry.t0 == 32) {
        EXPECT_EQ(entry.valid_frames, 8);
        ++tail_records;
      } else {
        EXPECT_EQ(entry.valid_frames, 16);
      }
    }
    EXPECT_EQ(tail_records, 2) << name;
    // Session-derived norms match SequenceDataset's.
    EXPECT_FLOAT_EQ(archive.norm(1, 17).mean, dataset.norm(1, 17).mean);
    EXPECT_FLOAT_EQ(archive.norm(1, 17).range, dataset.norm(1, 17).range);

    // Serialize -> parse -> decode; the relative bound must hold pointwise on
    // every frame, tail included.
    const core::DatasetArchive loaded =
        core::DatasetArchive::Deserialize(archive.Serialize());
    const Tensor recon = loaded.DecompressAll(codec.get());
    ASSERT_EQ(recon.shape(), field.shape());
    ExpectPointwiseBound(field, recon, dataset, 0.01);
  }
}

TEST(Session, ChunkingAndParallelismAreByteIdentical) {
  data::FieldSpec spec;
  spec.variables = 2;
  spec.frames = 40;
  spec.height = 32;
  spec.width = 32;
  spec.seed = 73;
  const Tensor field = data::GenerateClimate(spec);

  auto codec = Compressor::Create("sz");
  SessionOptions options;
  options.bound = {ErrorBoundMode::kRelative, 0.02};

  const auto one_shot =
      StreamIn(codec.get(), field, field.dim(1), options).Serialize();
  const auto frame_by_frame =
      StreamIn(codec.get(), field, 1, options).Serialize();
  EXPECT_EQ(one_shot, frame_by_frame);

  SessionOptions parallel = options;
  parallel.parallelism = 3;
  const auto fanned = StreamIn(codec.get(), field, 11, parallel).Serialize();
  EXPECT_EQ(one_shot, fanned);
}

TEST(Session, SingleFrameTailAndShortStreams) {
  data::FieldSpec spec;
  spec.variables = 1;
  spec.frames = 17;  // window 16 + single-frame tail
  spec.height = 32;
  spec.width = 32;
  spec.seed = 79;
  const Tensor field = data::GenerateTurbulence(spec);
  data::SequenceDataset dataset(field.Clone());

  auto codec = Compressor::Create("zfp");
  SessionOptions options;
  options.bound = {ErrorBoundMode::kRelative, 0.005};
  const core::DatasetArchive archive =
      StreamIn(codec.get(), field, 4, options);
  ASSERT_EQ(archive.entries().size(), 2u);
  EXPECT_EQ(archive.entries()[1].t0, 16);
  EXPECT_EQ(archive.entries()[1].valid_frames, 1);
  const Tensor recon = archive.DecompressAll(codec.get());
  ASSERT_EQ(recon.shape(), field.shape());
  ExpectPointwiseBound(field, recon, dataset, 0.005);

  // A stream shorter than one window: a single padded record carries it.
  const Tensor short_field = TimeSlice(field, 0, 5);
  data::SequenceDataset short_dataset(short_field.Clone());
  const core::DatasetArchive short_archive =
      StreamIn(codec.get(), short_field, 2, options);
  ASSERT_EQ(short_archive.entries().size(), 1u);
  EXPECT_EQ(short_archive.entries()[0].valid_frames, 5);
  const Tensor short_recon = short_archive.DecompressAll(codec.get());
  ASSERT_EQ(short_recon.shape(), short_field.shape());
  ExpectPointwiseBound(short_field, short_recon, short_dataset, 0.005);
}

TEST(Session, DecodeSessionEmitsSlabsInTimeOrder) {
  data::FieldSpec spec;
  spec.variables = 2;
  spec.frames = 40;
  spec.height = 32;
  spec.width = 32;
  spec.seed = 83;
  const Tensor field = data::GenerateClimate(spec);

  auto codec = Compressor::Create("sz");
  SessionOptions options;
  options.bound = {ErrorBoundMode::kRelative, 0.02};
  const core::DatasetArchive archive =
      StreamIn(codec.get(), field, 13, options);

  DecodeSession decode(codec.get(), archive);
  Tensor slab;
  std::int64_t t0 = -1;
  std::vector<std::pair<std::int64_t, std::int64_t>> slabs;  // (t0, frames)
  while (decode.Next(&slab, &t0)) {
    ASSERT_EQ(slab.dim(0), 2);
    slabs.emplace_back(t0, slab.dim(1));
  }
  ASSERT_EQ(slabs.size(), 3u);
  EXPECT_EQ(slabs[0], (std::pair<std::int64_t, std::int64_t>{0, 16}));
  EXPECT_EQ(slabs[1], (std::pair<std::int64_t, std::int64_t>{16, 16}));
  EXPECT_EQ(slabs[2], (std::pair<std::int64_t, std::int64_t>{32, 8}));

  // Decoding with the wrong codec is rejected up front.
  auto zfp = Compressor::Create("zfp");
  EXPECT_THROW(DecodeSession(zfp.get(), archive), std::runtime_error);
}

TEST(Session, GlscStreamingMatchesOneShotAndHoldsBound) {
  data::FieldSpec spec;
  spec.variables = 1;
  spec.frames = 20;  // window 8 -> windows at 0, 8 and a 4-frame tail
  spec.height = 16;
  spec.width = 16;
  spec.seed = 89;
  const Tensor field = data::GenerateClimate(spec);
  data::SequenceDataset dataset(field.Clone());

  CodecOptions options;
  options.window = 8;
  options.latent_channels = 4;
  options.hidden_channels = 6;
  options.hyper_channels = 2;
  options.model_channels = 8;
  options.heads = 2;
  options.schedule_steps = 30;
  options.sample_steps = 4;
  auto codec = Compressor::Create("glsc", options);
  TrainOptions train;
  train.vae_iterations = 50;
  train.model_iterations = 30;
  train.batch_size = 2;
  train.crop = 16;
  train.pca_fit_windows = 2;
  codec->Train(dataset, train);

  const double tau = 0.3;
  SessionOptions session_options;
  session_options.bound = {ErrorBoundMode::kPointwiseL2, tau};
  const core::DatasetArchive archive =
      StreamIn(codec.get(), field, 3, session_options);
  ASSERT_EQ(archive.entries().size(), 3u);
  EXPECT_EQ(archive.entries()[2].valid_frames, 4);

  // Chunked == one-shot == cloned-worker fan-out, byte for byte.
  const auto chunked = archive.Serialize();
  EXPECT_EQ(chunked,
            StreamIn(codec.get(), field, 20, session_options).Serialize());
  SessionOptions parallel = session_options;
  parallel.parallelism = 2;
  EXPECT_EQ(chunked, StreamIn(codec.get(), field, 20, parallel).Serialize());

  // Per-frame L2 bound (normalized units -> physical via the frame range)
  // holds on every real frame, tail included.
  const Tensor recon = archive.DecompressAll(codec.get());
  ASSERT_EQ(recon.shape(), field.shape());
  const std::int64_t hw = 16 * 16;
  for (std::int64_t t = 0; t < field.dim(1); ++t) {
    double l2 = 0.0;
    for (std::int64_t i = 0; i < hw; ++i) {
      const double d = field[t * hw + i] - recon[t * hw + i];
      l2 += d * d;
    }
    EXPECT_LE(std::sqrt(l2), tau * dataset.norm(0, t).range * (1.0 + 1e-3))
        << "t=" << t;
  }
}

// Acceptance: every registered codec round-trips a [2, 40, 32, 32] stream
// (T=40 with window 16 exercises the padded tail) through EncodeSession /
// DecodeSession, honoring its declared error bound where one exists.
TEST(Session, AllSixCodecsRoundTripStream) {
  data::FieldSpec spec;
  spec.variables = 2;
  spec.frames = 40;
  spec.height = 32;
  spec.width = 32;
  spec.seed = 97;
  const Tensor field = data::GenerateClimate(spec);
  data::SequenceDataset dataset(field.Clone());

  CodecOptions options;
  options.window = 16;
  options.latent_channels = 4;
  options.hidden_channels = 6;
  options.hyper_channels = 2;
  options.model_channels = 8;
  options.heads = 2;
  options.schedule_steps = 20;
  options.sample_steps = 2;
  options.sr_channels = 6;
  TrainOptions train;
  train.vae_iterations = 40;
  train.model_iterations = 25;
  train.batch_size = 2;
  train.crop = 16;
  train.pca_fit_windows = 1;

  for (const auto& name : RegisteredCompressors()) {
    SCOPED_TRACE(name);
    auto codec = Compressor::Create(name, options);
    if (!codec->capabilities().model_free) {
      TrainOptions codec_train = train;
      // vae_sr trains its VAE at crop/2 and needs the full hyperprior
      // geometry there.
      if (name == "vae_sr") codec_train.crop = 32;
      codec->Train(dataset, codec_train);
    }

    SessionOptions session_options;
    double rel_bound = 0.0, l2_bound = 0.0;
    if (codec->capabilities().Supports(ErrorBoundMode::kPointwiseL2)) {
      l2_bound = 0.5;
      session_options.bound = {ErrorBoundMode::kPointwiseL2, l2_bound};
    } else if (codec->capabilities().Supports(ErrorBoundMode::kRelative)) {
      rel_bound = 0.02;
      session_options.bound = {ErrorBoundMode::kRelative, rel_bound};
    }

    const core::DatasetArchive archive =
        StreamIn(codec.get(), field, 9, session_options);
    EXPECT_EQ(archive.codec(), name);
    ASSERT_EQ(archive.entries().size(), 6u);  // 2 vars x (2 full + 1 tail)

    const core::DatasetArchive loaded =
        core::DatasetArchive::Deserialize(archive.Serialize());
    const Tensor recon = loaded.DecompressAll(codec.get());
    ASSERT_EQ(recon.shape(), field.shape());
    EXPECT_TRUE(recon.AllFinite());

    if (rel_bound > 0.0) {
      ExpectPointwiseBound(field, recon, dataset, rel_bound);
    }
    if (l2_bound > 0.0) {
      const std::int64_t hw = 32 * 32;
      for (std::int64_t v = 0; v < 2; ++v) {
        for (std::int64_t t = 0; t < 40; ++t) {
          double l2 = 0.0;
          const float* a = field.data() + (v * 40 + t) * hw;
          const float* b = recon.data() + (v * 40 + t) * hw;
          for (std::int64_t i = 0; i < hw; ++i) {
            const double d = a[i] - b[i];
            l2 += d * d;
          }
          EXPECT_LE(std::sqrt(l2),
                    l2_bound * dataset.norm(v, t).range * (1.0 + 1e-3))
              << "v=" << v << " t=" << t;
        }
      }
    }
  }
}

TEST(Session, DecodeRejectsSlabValidFramesMismatch) {
  // Two variables' records at one t0 claiming different true lengths would
  // leave rows of the emitted slab holding zeros that look like data
  // (regression: Next used max() and silently emitted them).
  data::FieldSpec spec;
  spec.variables = 1;
  spec.frames = 16;
  spec.height = 32;
  spec.width = 32;
  spec.seed = 101;
  const Tensor field = data::GenerateClimate(spec);
  auto codec = Compressor::Create("sz");
  SessionOptions options;
  options.bound = {ErrorBoundMode::kRelative, 0.01};
  const core::DatasetArchive encoded = StreamIn(codec.get(), field, 16, options);
  ASSERT_EQ(encoded.entries().size(), 1u);

  std::vector<data::FrameNorm> norms(2 * 16, data::FrameNorm{0.0f, 1.0f});
  core::DatasetArchive archive("sz", {2, 16, 32, 32}, 16, norms);
  archive.Add(0, 0, 16, encoded.entries()[0].payload);
  archive.Add(1, 0, 9, encoded.entries()[0].payload);  // disagrees
  DecodeSession decode(codec.get(), archive);
  Tensor slab;
  EXPECT_THROW(decode.Next(&slab), std::runtime_error);
}

TEST(Session, RejectsGeometryAndLifecycleMisuse) {
  auto codec = Compressor::Create("sz");
  SessionOptions options;
  options.bound = {ErrorBoundMode::kRelative, 0.01};
  EncodeSession session(codec.get(), 2, 16, 16, options);
  EXPECT_THROW(session.Push(Tensor({1, 4, 16, 16})), std::runtime_error);
  EXPECT_THROW(session.Push(Tensor({2, 4, 16, 8})), std::runtime_error);
  EXPECT_THROW(session.Push(Tensor({4, 16, 16})), std::runtime_error);

  Rng rng(7);
  session.Push(Tensor::Randn({2, 4, 16, 16}, rng));
  // An un-pushed session still finishes (empty archive), but only once.
  (void)session.Finish();
  EXPECT_THROW(session.Push(Tensor::Randn({2, 4, 16, 16}, rng)),
               std::runtime_error);
  EXPECT_THROW(session.Finish(), std::runtime_error);
}

}  // namespace
}  // namespace glsc::api
