#include "glsc_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

namespace glsc::lint {
namespace fs = std::filesystem;

namespace {

// The only file allowed to name std:: synchronization primitives: it IS the
// sanctioned wrapper.
constexpr const char* kSanctionedSyncFile = "src/util/mutex.h";

constexpr const char* kRawSyncTokens[] = {
    "std::mutex",          "std::recursive_mutex",
    "std::timed_mutex",    "std::recursive_timed_mutex",
    "std::shared_mutex",   "std::shared_timed_mutex",
    "std::lock_guard",     "std::unique_lock",
    "std::scoped_lock",    "std::shared_lock",
    "std::condition_variable", "std::condition_variable_any",
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return true;
}

// Replaces every character of the region [begin, end) with spaces, keeping
// newlines so line numbers are preserved.
void Blank(std::string* s, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < s->size(); ++i) {
    if ((*s)[i] != '\n') (*s)[i] = ' ';
  }
}

int LineOfOffset(const std::string& s, std::size_t offset) {
  return 1 + static_cast<int>(std::count(s.begin(), s.begin() + offset, '\n'));
}

// True if `pos` begins a token occurrence: the match boundaries are not glued
// to identifier characters (so `renew`, `AlignedDeleter` never match).
bool AtTokenBoundary(const std::string& s, std::size_t pos, std::size_t len) {
  if (pos > 0 && IsIdentChar(s[pos - 1])) return false;
  // `std::mutex` must not match `std::mutexx` but must match `std::mutex<`.
  if (pos + len < s.size() && IsIdentChar(s[pos + len])) return false;
  return true;
}

// The identifier (or single punctuation character) immediately preceding
// `pos`, skipping whitespace. Empty at start of file.
std::string PreviousToken(const std::string& s, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(s[i - 1]))) --i;
  if (i == 0) return "";
  std::size_t end = i;
  if (IsIdentChar(s[i - 1])) {
    while (i > 0 && IsIdentChar(s[i - 1])) --i;
    return s.substr(i, end - i);
  }
  return s.substr(i - 1, 1);
}

// True when `pos` sits on a preprocessor line (first non-space char is '#'):
// `#include <new>` is not a new-expression.
bool OnPreprocessorLine(const std::string& s, std::size_t pos) {
  std::size_t bol = s.rfind('\n', pos == 0 ? 0 : pos - 1);
  bol = (bol == std::string::npos) ? 0 : bol + 1;
  for (std::size_t i = bol; i < pos; ++i) {
    if (s[i] == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(s[i]))) return false;
  }
  return false;
}

struct AllowEntry {
  std::string rule;
  std::string file;
  int source_line = 0;
  bool used = false;
};

}  // namespace

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  std::size_t i = 0;
  const std::size_t n = source.size();
  while (i < n) {
    const char c = source[i];
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      std::size_t end = source.find('\n', i);
      if (end == std::string::npos) end = n;
      Blank(&out, i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      std::size_t end = source.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      Blank(&out, i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && source[i + 1] == '"' &&
               (i == 0 || !IsIdentChar(source[i - 1]))) {
      // Raw string: R"delim( ... )delim"
      const std::size_t open = source.find('(', i + 2);
      if (open == std::string::npos) break;
      const std::string delim = source.substr(i + 2, open - (i + 2));
      const std::string closer = ")" + delim + "\"";
      std::size_t end = source.find(closer, open + 1);
      end = (end == std::string::npos) ? n : end + closer.size();
      Blank(&out, i, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      // Skip char/string literal, honoring backslash escapes.
      std::size_t j = i + 1;
      while (j < n && source[j] != c) {
        j += (source[j] == '\\') ? 2 : 1;
      }
      const std::size_t end = std::min(j + 1, n);
      Blank(&out, i, end);
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

namespace {

void CheckRawSync(const std::string& rel, const std::string& stripped,
                  std::vector<Finding>* findings) {
  if (rel == kSanctionedSyncFile) return;
  for (const char* token : kRawSyncTokens) {
    const std::string t(token);
    std::size_t pos = 0;
    while ((pos = stripped.find(t, pos)) != std::string::npos) {
      if (AtTokenBoundary(stripped, pos, t.size())) {
        findings->push_back(
            {"raw-sync", rel, LineOfOffset(stripped, pos),
             t + " outside src/util/mutex.h; use the util::Mutex wrappers "
                 "so annotations and GLSC_DEBUG_LOCKS see this lock"});
      }
      pos += t.size();
    }
  }
}

void CheckIostreamInHeader(const std::string& rel, const std::string& stripped,
                           std::vector<Finding>* findings) {
  std::size_t pos = 0;
  while ((pos = stripped.find("<iostream>", pos)) != std::string::npos) {
    // Only count it on an #include line (the stripped text can't contain it
    // anywhere else anyway, but be precise).
    if (OnPreprocessorLine(stripped, pos)) {
      findings->push_back(
          {"iostream-in-header", rel, LineOfOffset(stripped, pos),
           "#include <iostream> in a header drags iostream statics into "
           "every includer; include it in the .cc or use <ostream>"});
    }
    pos += 1;
  }
}

void CheckNakedNew(const std::string& rel, const std::string& stripped,
                   std::vector<Finding>* findings) {
  for (const char* kw : {"new", "delete"}) {
    const std::string t(kw);
    std::size_t pos = 0;
    while ((pos = stripped.find(t, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += t.size();
      if (!AtTokenBoundary(stripped, hit, t.size())) continue;
      if (OnPreprocessorLine(stripped, hit)) continue;  // #include <new>
      const std::string prev = PreviousToken(stripped, hit);
      if (prev == "operator") continue;  // operator new/delete: sanctioned
      if (t == "delete" && prev == "=") continue;  // deleted function
      findings->push_back(
          {"naked-new", rel, LineOfOffset(stripped, hit),
           "naked `" + t + "` in src/; use std::make_unique/make_shared, a "
               "container, or the Workspace arena"});
    }
  }
}

void CheckTestRegistration(const fs::path& root,
                           const std::vector<std::string>& test_stems,
                           std::vector<Finding>* findings,
                           std::vector<std::string>* errors) {
  if (test_stems.empty()) return;
  std::string cmake;
  if (!ReadFile(root / "CMakeLists.txt", &cmake)) {
    errors->push_back("test-registration: cannot read CMakeLists.txt");
    return;
  }
  // Glob-mode: the canonical loop registers every tests/*_test.cc twice. If
  // all four markers are present the loop covers every stem; otherwise fall
  // back to per-stem explicit registration.
  const bool glob_mode =
      cmake.find("tests/*_test.cc") != std::string::npos &&
      cmake.find("add_test(NAME ${test_name} ") != std::string::npos &&
      cmake.find("add_test(NAME ${test_name}_scalar") != std::string::npos &&
      cmake.find("GLSC_FORCE_SCALAR=1") != std::string::npos;
  if (glob_mode) return;
  for (const std::string& stem : test_stems) {
    const bool native =
        cmake.find("add_test(NAME " + stem + " ") != std::string::npos ||
        cmake.find("add_test(NAME " + stem + "\n") != std::string::npos;
    const bool scalar =
        cmake.find("add_test(NAME " + stem + "_scalar") != std::string::npos &&
        cmake.find("GLSC_FORCE_SCALAR=1") != std::string::npos;
    if (!native || !scalar) {
      findings->push_back(
          {"test-registration", "tests/" + stem + ".cc", 1,
           "must be registered with ctest both natively and as `" + stem +
               "_scalar` under GLSC_FORCE_SCALAR=1"});
    }
  }
}

std::vector<AllowEntry> LoadAllowlist(const fs::path& root,
                                      std::vector<std::string>* errors) {
  std::vector<AllowEntry> entries;
  std::string text;
  if (!ReadFile(root / "tools" / "lint_allowlist.txt", &text)) {
    return entries;  // no allowlist: nothing is exempt
  }
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    AllowEntry e;
    e.source_line = lineno;
    if (!(fields >> e.rule)) continue;  // blank / comment-only line
    if (!(fields >> e.file)) {
      errors->push_back("lint_allowlist.txt:" + std::to_string(lineno) +
                        ": malformed entry (want `rule path`)");
      continue;
    }
    std::string extra;
    if (fields >> extra) {
      errors->push_back("lint_allowlist.txt:" + std::to_string(lineno) +
                        ": trailing tokens after `rule path` (put the "
                        "justification behind a #)");
      continue;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

Result RunLint(const std::string& root_str) {
  Result result;
  const fs::path root(root_str);

  // Collect candidate files deterministically.
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "bench", "fuzz", "tools"}) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        result.errors.push_back("cannot walk " + base.string() + ": " +
                                ec.message());
        break;
      }
      if (!it->is_regular_file()) continue;
      const std::string rel =
          fs::path(it->path()).lexically_relative(root).generic_string();
      // The lint self-test fixtures contain deliberate violations.
      if (rel.rfind("tools/lint_fixtures/", 0) == 0) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  std::vector<std::string> test_stems;
  for (const fs::path& path : files) {
    const std::string rel = path.lexically_relative(root).generic_string();
    std::string source;
    if (!ReadFile(path, &source)) {
      result.errors.push_back("cannot read " + rel);
      continue;
    }
    ++result.files_scanned;
    const std::string stripped = StripCommentsAndStrings(source);
    const bool is_header = path.extension() == ".h";
    const bool in_src = rel.rfind("src/", 0) == 0;
    const bool in_tests = rel.rfind("tests/", 0) == 0;

    CheckRawSync(rel, stripped, &findings);
    if (is_header) CheckIostreamInHeader(rel, stripped, &findings);
    if (in_src) CheckNakedNew(rel, stripped, &findings);
    if (in_tests && rel.size() > std::string("tests/_test.cc").size() &&
        rel.rfind("_test.cc") == rel.size() - 8 &&
        rel.find('/', 6) == std::string::npos) {
      test_stems.push_back(
          path.stem().string());  // tests/foo_test.cc -> foo_test
    }
  }

  CheckTestRegistration(root, test_stems, &findings, &result.errors);

  // Apply the allowlist, then flag entries that suppressed nothing.
  std::vector<AllowEntry> allow = LoadAllowlist(root, &result.errors);
  for (const Finding& f : findings) {
    bool suppressed = false;
    for (AllowEntry& e : allow) {
      if (e.rule == f.rule && e.file == f.file) {
        e.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) result.findings.push_back(f);
  }
  for (const AllowEntry& e : allow) {
    if (!e.used) {
      result.errors.push_back(
          "lint_allowlist.txt:" + std::to_string(e.source_line) +
          ": stale entry `" + e.rule + " " + e.file +
          "` suppresses nothing; delete it");
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

}  // namespace glsc::lint
