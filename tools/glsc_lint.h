// glsc_lint — project-invariant linter.
//
// Off-the-shelf linters cannot know this repo's conventions, and the
// container has no clang, so clang-tidy/clang-query are unavailable anyway.
// This tool token-scans the tree (comments and string literals stripped) and
// enforces, as ERRORS, the invariants the codebase relies on:
//
//   raw-sync            std::mutex / std::lock_guard / std::unique_lock /
//                       std::condition_variable / friends anywhere outside
//                       src/util/mutex.h. Everything must go through the
//                       util::Mutex wrappers so thread-safety annotations and
//                       the GLSC_DEBUG_LOCKS runtime checker see every lock.
//   iostream-in-header  #include <iostream> in any header: it injects a
//                       static ios_base::Init into every includer and drags
//                       ~100KB of locale machinery into minimal binaries.
//   naked-new           `new` / `delete` expressions in src/ (tests and bench
//                       may use them). Allocation in the library goes through
//                       RAII owners or the Workspace arena; `operator new`
//                       (placement/aligned allocation) and `= delete` are not
//                       flagged.
//   test-registration   every tests/*_test.cc must be registered with ctest
//                       BOTH natively and as a `_scalar` variant running
//                       under GLSC_FORCE_SCALAR=1, so the scalar fallback
//                       kernels stay co-tested with the SIMD paths.
//
// Sanctioned exceptions live in tools/lint_allowlist.txt as `rule path`
// lines. The allowlist is machine-checked in both directions: an entry that
// no longer suppresses anything is itself an error, so suppressions cannot
// outlive the code they excuse.
#pragma once

#include <string>
#include <vector>

namespace glsc::lint {

struct Finding {
  std::string rule;  // one of the rule ids above
  std::string file;  // path relative to the scanned root, '/'-separated
  int line = 0;      // 1-based; 0 when the finding is not line-anchored
  std::string message;
};

struct Result {
  // Violations that survived the allowlist, in (file, line) order.
  std::vector<Finding> findings;
  // Infrastructure problems: unreadable files, malformed or stale allowlist
  // entries. Any error fails the run just like a finding does.
  std::vector<std::string> errors;
  int files_scanned = 0;
  bool ok() const { return findings.empty() && errors.empty(); }
};

// Scans `root` (a repo checkout or a fixture tree mimicking one): the
// directories src/, tests/, bench/, fuzz/ and tools/ (minus
// tools/lint_fixtures/), plus the root CMakeLists.txt for the
// test-registration rule. Reads root/tools/lint_allowlist.txt if present.
Result RunLint(const std::string& root);

// Strips //, /* */ comments and "...", '...', R"(...)" literals, preserving
// newlines so line numbers survive. Exposed for the self-test.
std::string StripCommentsAndStrings(const std::string& source);

}  // namespace glsc::lint
