// Fixture: <iostream> in a header must be flagged.
#pragma once

#include <iostream>

namespace fixture {
inline void Shout() { std::cout << "noisy\n"; }
}  // namespace fixture
