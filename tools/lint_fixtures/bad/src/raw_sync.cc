// Fixture: raw std sync primitives outside src/util/mutex.h must be flagged.
#include <mutex>

namespace fixture {

std::mutex g_mu;

int Locked() {
  std::lock_guard<std::mutex> lock(g_mu);
  return 1;
}

}  // namespace fixture
