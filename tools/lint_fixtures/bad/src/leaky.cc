// Fixture: naked new/delete expressions in src/ must be flagged; the
// sanctioned forms below must NOT be.
#include <new>

namespace fixture {

struct Widget {
  Widget(const Widget&) = delete;  // `= delete` is not a delete-expression
  int v = 0;
};

int* Make() { return new int(7); }  // flagged

void Destroy(int* p) { delete p; }  // flagged

void* RawAlloc(std::size_t n) {
  return ::operator new(n);  // operator new: sanctioned
}

void RawFree(void* p) {
  ::operator delete(p);  // operator delete: sanctioned
}

}  // namespace fixture
