// Fixture: registered natively but missing the _scalar registration.
int main() { return 0; }
