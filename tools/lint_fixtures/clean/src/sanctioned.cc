// Fixture: a raw std::mutex covered by the fixture allowlist, plus decoys
// that only match if comment/string stripping is broken:
//   std::condition_variable in this comment must not be flagged.
#include <mutex>

namespace fixture {

std::mutex g_mu;  // suppressed by `raw-sync src/sanctioned.cc`

const char* Decoys() {
  // A delete-expression in a string literal is not a delete-expression.
  return "new Thing(); delete thing; std::lock_guard<std::mutex> lk(mu);";
}

}  // namespace fixture
