// Fixture: covered by the glob-mode registration loop in CMakeLists.txt.
int main() { return 0; }
