// Fixture: clean file; the allowlist next door claims an exception for it
// that suppresses nothing, which must be reported as a stale entry.
namespace fixture {
int Fine() { return 42; }
}  // namespace fixture
