// Command-line driver for the project linter. Usage:
//
//   glsc_lint [repo-root]      (default: current directory)
//
// Prints one line per violation in `file:line: [rule] message` form (the
// format editors and CI annotations parse), then a summary. Exit status is 0
// only when the tree is clean AND the allowlist has no stale entries.
#include <cstdio>

#include "glsc_lint.h"

int main(int argc, char** argv) {
  const char* root = (argc > 1) ? argv[1] : ".";
  const glsc::lint::Result result = glsc::lint::RunLint(root);

  for (const auto& f : result.findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  for (const auto& e : result.errors) {
    std::printf("error: %s\n", e.c_str());
  }
  std::printf("glsc_lint: %d files scanned, %zu violations, %zu errors\n",
              result.files_scanned, result.findings.size(),
              result.errors.size());
  return result.ok() ? 0 : 1;
}
