#!/usr/bin/env bash
# Static-analysis gate, three legs:
#
#   1. gcc -Werror       — the whole tree (src/tests/bench/fuzz/examples) must
#                          build warning-free under -Wall -Wextra. Always runs.
#   2. clang thread-safety — rebuilds src/ with -Werror=thread-safety so the
#                          GUARDED_BY/REQUIRES annotations in util/mutex.h are
#                          ENFORCED, not decorative. Runs when clang++ exists;
#                          skipped (loudly) otherwise — gcc parses the
#                          annotation macros to nothing.
#   3. clang-tidy        — .clang-tidy profile (bugprone/concurrency/
#                          performance/init) over src/ via the compilation
#                          database. Runs when clang-tidy exists.
#
# Usage:
#   scripts/lint.sh
#
# Environment:
#   BUILD_DIR   base build tree name (default: build; lint trees get suffixes)
#   JOBS        build parallelism (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
failed=0

echo "== lint leg 1: -Werror build (gcc/default compiler) =="
WERROR_DIR="${BUILD_DIR}-lint"
cmake -B "$WERROR_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DGLSC_WERROR=ON \
    -DGLSC_FUZZ=ON > /dev/null
if ! cmake --build "$WERROR_DIR" -j"$JOBS"; then
  echo "error: -Werror build failed" >&2
  failed=1
fi

if command -v clang++ > /dev/null; then
  echo "== lint leg 2: clang -Werror=thread-safety =="
  TSA_DIR="${BUILD_DIR}-lint-tsa"
  cmake -B "$TSA_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_COMPILER=clang++ -DGLSC_WERROR_THREAD_SAFETY=ON > /dev/null
  # The annotations all live in the core library; analyzing it is the gate.
  if ! cmake --build "$TSA_DIR" -j"$JOBS" --target glsc_core; then
    echo "error: thread-safety analysis failed" >&2
    failed=1
  fi
else
  echo "== lint leg 2 SKIPPED: no clang++ on PATH (thread-safety analysis" \
       "needs clang; the annotations compile to no-ops under gcc) =="
fi

if command -v clang-tidy > /dev/null; then
  echo "== lint leg 3: clang-tidy =="
  # Leg 1's tree exports compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
  # is on globally); tidy src/ against it.
  mapfile -t sources < <(find src -name '*.cc' | sort)
  if ! clang-tidy -p "$WERROR_DIR" --quiet "${sources[@]}"; then
    echo "error: clang-tidy reported findings" >&2
    failed=1
  fi
else
  echo "== lint leg 3 SKIPPED: no clang-tidy on PATH =="
fi

if [[ $failed -ne 0 ]]; then
  echo "== lint FAILED =="
  exit 1
fi
echo "== lint OK =="
