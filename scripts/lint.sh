#!/usr/bin/env bash
# Static-analysis gate, four legs:
#
#   1. glsc_lint          — the project's own invariant linter (tools/
#                           glsc_lint.cc): raw sync primitives outside
#                           util/mutex.h, missing native+_scalar test
#                           registrations, <iostream> in headers, naked
#                           new/delete in src/, stale allowlist entries.
#                           Always runs (tools/lint_allowlist.txt holds the
#                           sanctioned exceptions).
#   2. gcc -Werror        — the whole tree (src/tests/bench/fuzz/examples)
#                           must build warning-free under -Wall -Wextra.
#                           Always runs.
#   3. clang thread-safety — rebuilds src/ with -Werror=thread-safety so the
#                           GUARDED_BY/REQUIRES annotations in util/mutex.h
#                           are ENFORCED, not decorative. Runs when clang++
#                           exists; skipped (loudly) otherwise — gcc parses
#                           the annotation macros to nothing. The runtime
#                           half of the same invariants (GLSC_DEBUG_LOCKS)
#                           runs under plain gcc via CHECK_DEBUG=1.
#   4. clang-tidy         — .clang-tidy profile (bugprone/concurrency/
#                           performance/init) over src/ via the compilation
#                           database. Runs when clang-tidy exists.
#
# Every leg reports into the end-of-run summary as ran or SKIPPED, so a
# toolchain without clang cannot silently green-light the clang legs.
#
# Usage:
#   scripts/lint.sh
#
# Environment:
#   BUILD_DIR   base build tree name (default: build; lint trees get suffixes)
#   JOBS        build parallelism (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
failed=0
legs_ran=()
legs_skipped=()

echo "== lint leg 1: glsc_lint (project invariants) =="
WERROR_DIR="${BUILD_DIR}-lint"
cmake -B "$WERROR_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DGLSC_WERROR=ON \
    -DGLSC_FUZZ=ON > /dev/null
cmake --build "$WERROR_DIR" -j"$JOBS" --target glsc_lint > /dev/null
if ! "$WERROR_DIR/glsc_lint" .; then
  echo "error: glsc_lint reported violations (sanctioned exceptions go in" \
       "tools/lint_allowlist.txt with a justification)" >&2
  failed=1
fi
legs_ran+=("glsc_lint")

echo "== lint leg 2: -Werror build (gcc/default compiler) =="
if ! cmake --build "$WERROR_DIR" -j"$JOBS"; then
  echo "error: -Werror build failed" >&2
  failed=1
fi
legs_ran+=("gcc -Werror")

if command -v clang++ > /dev/null; then
  echo "== lint leg 3: clang -Werror=thread-safety =="
  TSA_DIR="${BUILD_DIR}-lint-tsa"
  cmake -B "$TSA_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_COMPILER=clang++ -DGLSC_WERROR_THREAD_SAFETY=ON > /dev/null
  # The annotations all live in the core library; analyzing it is the gate.
  if ! cmake --build "$TSA_DIR" -j"$JOBS" --target glsc_core; then
    echo "error: thread-safety analysis failed" >&2
    failed=1
  fi
  legs_ran+=("clang thread-safety")
else
  echo "== lint leg 3 SKIPPED: no clang++ on PATH (thread-safety analysis" \
       "needs clang; the annotations compile to no-ops under gcc) =="
  legs_skipped+=("clang thread-safety (no clang++; runtime equivalent: CHECK_DEBUG=1)")
fi

if command -v clang-tidy > /dev/null; then
  echo "== lint leg 4: clang-tidy =="
  # Leg 2's tree exports compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
  # is on globally); tidy src/ against it.
  mapfile -t sources < <(find src -name '*.cc' | sort)
  if ! clang-tidy -p "$WERROR_DIR" --quiet "${sources[@]}"; then
    echo "error: clang-tidy reported findings" >&2
    failed=1
  fi
  legs_ran+=("clang-tidy")
else
  echo "== lint leg 4 SKIPPED: no clang-tidy on PATH =="
  legs_skipped+=("clang-tidy (no clang-tidy on PATH)")
fi

echo "== lint summary =="
for leg in "${legs_ran[@]}"; do
  echo "   ran:     $leg"
done
for leg in "${legs_skipped[@]}"; do
  echo "   SKIPPED: $leg"
done

if [[ $failed -ne 0 ]]; then
  echo "== lint FAILED =="
  exit 1
fi
echo "== lint OK (${#legs_ran[@]} legs ran, ${#legs_skipped[@]} skipped) =="
