#!/usr/bin/env bash
# Bounded fuzz smoke run: builds the fuzz/ harnesses in a separate
# ASan+UBSan tree, generates the deterministic seed corpus, and gives each
# target a short budget. Under clang this is a real (coverage-guided)
# libFuzzer run; under gcc the standalone driver replays the corpus plus
# deterministic mutations. Either way a crash fails the script.
#
# Usage:
#   scripts/fuzz_smoke.sh
#
# Environment:
#   BUILD_DIR   base build tree name (default: build; fuzz uses ${BUILD_DIR}-fuzz)
#   FUZZ_TIME   per-target budget in seconds (default: 30)
#   JOBS        build parallelism (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
FUZZ_DIR="${BUILD_DIR}-fuzz"
FUZZ_TIME=${FUZZ_TIME:-30}
JOBS=${JOBS:-$(nproc)}

TARGETS=(fuzz_archive_deserialize fuzz_archive_reader fuzz_range_coder)

# A sanitizer report is a finding, not a log line: make ASan/UBSan abort so
# the harness exits nonzero and this script fails.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:abort_on_error=1:print_stacktrace=1}"

echo "== configure fuzz tree ($FUZZ_DIR) =="
cmake -B "$FUZZ_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGLSC_FUZZ=ON -DGLSC_SANITIZE=address,undefined

echo "== build harnesses =="
cmake --build "$FUZZ_DIR" -j"$JOBS" --target glsc_make_corpus "${TARGETS[@]}"

echo "== seed corpus =="
CORPUS="$FUZZ_DIR/corpus"
rm -rf "$CORPUS"
"$FUZZ_DIR/glsc_make_corpus" "$CORPUS"

# The CMake cache records whether the compiler links libFuzzer; the two
# driver modes take different arguments for the same budget.
if grep -q 'GLSC_COMPILER_HAS_LIBFUZZER:INTERNAL=1' "$FUZZ_DIR/CMakeCache.txt"; then
  MODE=libfuzzer
else
  MODE=standalone
fi
echo "== fuzz smoke ($MODE, ${FUZZ_TIME}s/target) =="

run_target() {
  local target="$1" corpus="$2"
  echo "-- $target over $corpus"
  if [[ "$MODE" == libfuzzer ]]; then
    "$FUZZ_DIR/$target" -max_total_time="$FUZZ_TIME" -timeout=10 "$corpus"
  else
    GLSC_FUZZ_MAX_SECONDS="$FUZZ_TIME" GLSC_FUZZ_MUTATIONS=2000 \
        "$FUZZ_DIR/$target" "$corpus"
  fi
}

run_target fuzz_archive_deserialize "$CORPUS/archive"
run_target fuzz_archive_reader "$CORPUS/archive"
run_target fuzz_range_coder "$CORPUS/range_coder"

echo "== fuzz smoke OK =="
