#!/usr/bin/env bash
# gcc -fanalyzer lane: interprocedural path-sensitive static analysis of the
# core library, no clang required.
#
# A dedicated build tree compiles src/ with GLSC_ANALYZE=ON (-fanalyzer). The
# analyzer's diagnostics are normalized to stable `file|warning-id` pairs
# (line numbers churn with every unrelated edit) and diffed against the
# triaged baseline in tools/fanalyzer_baseline.txt:
#
#   - a finding NOT in the baseline fails the lane (new bug or new FP — either
#     way a human must look and either fix it or triage it into the baseline
#     with a justification comment);
#   - a baseline entry with no matching finding fails the lane (stale
#     suppressions cannot outlive the code they excused).
#
# Regenerate the raw findings list for re-triage with:
#   scripts/analyze.sh --print-findings
#
# Environment:
#   BUILD_DIR   base build tree name (default: build; this lane appends
#               -analyze)
#   JOBS        build parallelism (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
ANALYZE_DIR="${BUILD_DIR}-analyze"
BASELINE=tools/fanalyzer_baseline.txt

echo "== gcc -fanalyzer lane (GLSC_ANALYZE=ON) =="
cmake -B "$ANALYZE_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DGLSC_ANALYZE=ON \
    > /dev/null

log="$ANALYZE_DIR/fanalyzer.log"
# Only the core library: that is where the analysis has interprocedural bite,
# and it keeps the lane's wall-clock bounded (the analyzer costs seconds per
# TU). Force a fresh compile so findings are never dropped by a warm cache.
cmake --build "$ANALYZE_DIR" --target clean > /dev/null
if ! cmake --build "$ANALYZE_DIR" -j"$JOBS" --target glsc_core 2> "$log"; then
  cat "$log" >&2
  echo "error: -fanalyzer build failed" >&2
  exit 1
fi

# Normalize: keep the headline line of each diagnostic, strip the absolute
# prefix and position, keep `relative-file|-Wanalyzer-id`. Location-less
# summary lines ("cc1plus: ...") carry no triage value and are dropped.
found="$ANALYZE_DIR/fanalyzer.found"
sed -nE 's|^('"$PWD"'/)?([^ :]+):[0-9]+:[0-9]+: warning: .*\[(-Wanalyzer-[a-z0-9-]+)\]$|\2\|\3|p' \
    "$log" | sort -u > "$found"

if [[ "${1:-}" == "--print-findings" ]]; then
  cat "$found"
fi

expected="$ANALYZE_DIR/fanalyzer.expected"
grep -vE '^\s*(#|$)' "$BASELINE" | sort -u > "$expected"

failed=0
if ! comm -23 "$found" "$expected" | grep .; then
  :
else
  echo "error: NEW -fanalyzer findings (above). Fix them, or if triaged as" \
       "false positives add them to $BASELINE with a justification." >&2
  failed=1
fi
if ! comm -13 "$found" "$expected" | grep .; then
  :
else
  echo "error: STALE baseline entries (above) no longer reported by the" \
       "analyzer. Delete them from $BASELINE." >&2
  failed=1
fi

if [[ $failed -ne 0 ]]; then
  echo "== analyze FAILED =="
  exit 1
fi
echo "== analyze OK ($(wc -l < "$found") known findings, all baselined) =="
