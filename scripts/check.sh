#!/usr/bin/env bash
# One-command PR gate: configure, build, and run the full ctest suite (native
# + _scalar registrations) with a nonzero exit on any failure.
#
# Usage:
#   scripts/check.sh [-j N] [extra ctest args...]
#
# Environment:
#   BUILD_DIR    build tree (default: build)
#   BUILD_TYPE   CMake build type (default: Release)
#   JOBS         parallelism for build + ctest (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BUILD_TYPE=${BUILD_TYPE:-Release}
JOBS=${JOBS:-$(nproc)}

if [[ "${1:-}" == "-j" ]]; then
  JOBS="$2"
  shift 2
fi

echo "== configure ($BUILD_TYPE) =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE"

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" "$@"

# The project invariant linter always gates — it is a sub-second token scan
# and the invariants it enforces (no raw sync primitives outside
# util/mutex.h, dual native+_scalar test registration, no <iostream> in
# headers, no naked new/delete in src/) rot silently the moment they stop
# being checked. Sanctioned exceptions live in tools/lint_allowlist.txt.
echo "== glsc_lint =="
"$BUILD_DIR/glsc_lint" .

# The serve and workspace suites guard the random-access read path and the
# zero-allocation decode path; make sure the glob actually registered them
# under BOTH dispatch registrations (a stale build tree or a renamed file
# would otherwise drop them silently).
echo "== serve + workspace tests registered (native + _scalar) =="
for t in serve_test serve_test_scalar workspace_test workspace_test_scalar \
         shard_manager_test shard_manager_test_scalar \
         concurrency_stress_test concurrency_stress_test_scalar \
         fuzz_regression_test fuzz_regression_test_scalar \
         glsc_lint_test glsc_lint_test_scalar \
         lock_checker_test lock_checker_test_scalar \
         arena_debug_test arena_debug_test_scalar \
         filters_test filters_test_scalar \
         container_v4_test container_v4_test_scalar; do
  # grep reads to EOF (no -q): under `pipefail`, an early-exiting grep can
  # SIGPIPE ctest and turn a present registration into a spurious failure.
  if ! ctest --test-dir "$BUILD_DIR" -N -R "^${t}\$" | grep "${t}\$" > /dev/null; then
    echo "error: ctest registration missing: $t" >&2
    exit 1
  fi
done

# Bench JSON gate: run the (cheap, rule-based) random-access and e2e decode
# benches and reject any inf/nan in every emitted bench JSON — degenerate
# metrics must be clamped at the source, not discovered downstream by a JSON
# parser. The e2e gate uses the model-free sz codec so it stays fast; the
# GLSC trajectory numbers come from scripts/bench_smoke.sh.
echo "== bench JSON gate =="
"$BUILD_DIR/bench_random_access" --frames=48 --variables=1 \
    --json="$BUILD_DIR/BENCH_random_access.json"
"$BUILD_DIR/bench_e2e_decode" --codec=sz --frames=48 --variables=1 \
    --json="$BUILD_DIR/BENCH_e2e.json"
"$BUILD_DIR/bench_serve" --json="$BUILD_DIR/BENCH_serve.json"
# Filter-pipeline gate: model-free sz arm, small buffer so it stays cheap.
# The full glsc trajectory (which may train) lives in bench_smoke.sh.
"$BUILD_DIR/bench_filters" --codecs=sz --frames=64 --mb=2 --reps=3 \
    --json="$BUILD_DIR/BENCH_filters.json"
if [[ ! -s "$BUILD_DIR/BENCH_e2e.json" ]]; then
  echo "error: BENCH_e2e.json missing or empty" >&2
  exit 1
fi
if [[ ! -s "$BUILD_DIR/BENCH_serve.json" ]]; then
  echo "error: BENCH_serve.json missing or empty" >&2
  exit 1
fi
# The serving front end must prove graceful degradation, not just run: the
# overload arm has to have shed load through the bounded queue.
for field in sustained_qps sustained_p50_ms sustained_p99_ms overload_qps \
             overload_p99_ms overload_shed overload_timeouts \
             sustained_retries; do
  if ! grep -q "\"$field\"" "$BUILD_DIR/BENCH_serve.json"; then
    echo "error: BENCH_serve.json missing field: $field" >&2
    exit 1
  fi
done
if grep -q '"overload_shed": 0,' "$BUILD_DIR/BENCH_serve.json"; then
  echo "error: overload arm shed nothing — not an overload" >&2
  exit 1
fi
# The batched-fetch comparison must actually be in the emitted JSON — a stale
# bench binary would silently drop the tentpole's headline numbers.
for field in fetch_serial_windows_per_s fetch_batched_windows_per_s \
             fetch_batched_speedup fetch_batch_size; do
  if ! grep -q "\"$field\"" "$BUILD_DIR/BENCH_e2e.json"; then
    echo "error: BENCH_e2e.json missing field: $field" >&2
    exit 1
  fi
done
# The filter bench must report the kernel throughputs and the filtered-vs-raw
# comparison — a stale binary would silently drop the v4 headline numbers.
if [[ ! -s "$BUILD_DIR/BENCH_filters.json" ]]; then
  echo "error: BENCH_filters.json missing or empty" >&2
  exit 1
fi
for field in bitshuffle_enc_gbps bitshuffle_dec_gbps delta_enc_gbps \
             delta_dec_gbps glz_comp_gbps glz_decomp_gbps v4_over_v3_ratio \
             v3_window_fetch_mb_s v4_window_fetch_mb_s; do
  if ! grep -q "\"$field\"" "$BUILD_DIR/BENCH_filters.json"; then
    echo "error: BENCH_filters.json missing field: $field" >&2
    exit 1
  fi
done
# v4 must actually shrink the archive relative to raw v3 (ratio < 1).
if grep -qE '"v4_over_v3_ratio": (1|[2-9])' "$BUILD_DIR/BENCH_filters.json"; then
  echo "error: v4 archive not smaller than raw v3" >&2
  exit 1
fi
bad=0
# Gate ONLY the two files the commands above emitted. A BENCH_*.json glob over
# the repo root (or the whole build dir) would also pick up artifacts from
# earlier manual bench runs and fail this gate on files this run never wrote.
for f in "$BUILD_DIR/BENCH_random_access.json" "$BUILD_DIR/BENCH_e2e.json" \
         "$BUILD_DIR/BENCH_serve.json" "$BUILD_DIR/BENCH_filters.json"; do
  [[ -f "$f" ]] || continue
  if grep -nE '(^|[^A-Za-z_])-?(inf|nan)([^A-Za-z_]|$)' "$f"; then
    echo "error: non-finite value in $f" >&2
    bad=1
  fi
done
if [[ $bad -ne 0 ]]; then
  exit 1
fi

# Opt-in lanes. A lane requested via env var must RUN or FAIL the gate —
# never skip: the CMake configure step behind each lane probes its toolchain
# requirement (check_cxx_compiler_flag) and raises FATAL_ERROR when the
# compiler cannot honor it, which aborts this script under `set -e`. CI can
# therefore trust that a green CHECK_SANITIZE/CHECK_ANALYZE/CHECK_DEBUG run
# actually executed the instrumented tree, rather than silently no-opping on
# a toolchain that lacks the support.
#
# Sanitizer lane: CHECK_SANITIZE=address,undefined (any -fsanitize= list)
# builds a separate instrumented tree and runs the concurrency-heavy serving
# suites under it. Off by default — the instrumented build roughly doubles
# gate time — but cheap to request when touching serve/ or util/.
# CHECK_SANITIZE=thread is special-cased onto the GLSC_TSAN option (TSan is
# incompatible with ASan in one binary) and gets the stress suite plus the
# documented libstdc++ suppressions (tsan.supp). Both trees default the
# GLSC_DEBUG_LOCKS/GLSC_DEBUG_ARENA runtime checkers ON (see CMakeLists).
if [[ "${CHECK_SANITIZE:-}" == "thread" ]]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  echo "== TSan lane (GLSC_TSAN=ON) =="
  cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGLSC_TSAN=ON
  cmake --build "$TSAN_DIR" -j"$JOBS" \
      --target shard_manager_test serve_test concurrency_stress_test \
               workspace_test util_test
  TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/tsan.supp" \
      ctest --test-dir "$TSAN_DIR" --output-on-failure -j"$JOBS" \
      -R '^(shard_manager_test|serve_test|concurrency_stress_test|workspace_test|util_test)(_scalar)?$'
elif [[ -n "${CHECK_SANITIZE:-}" ]]; then
  SAN_DIR="${BUILD_DIR}-sanitize"
  echo "== sanitizer lane (-fsanitize=$CHECK_SANITIZE) =="
  cmake -B "$SAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGLSC_SANITIZE="$CHECK_SANITIZE"
  cmake --build "$SAN_DIR" -j"$JOBS" \
      --target shard_manager_test serve_test concurrency_stress_test
  ctest --test-dir "$SAN_DIR" --output-on-failure -j"$JOBS" \
      -R '^(shard_manager_test|serve_test|concurrency_stress_test)(_scalar)?$'
fi

# Opt-in debug-checker lane: CHECK_DEBUG=1 builds a RelWithDebInfo tree with
# the runtime lock-order checker (GLSC_DEBUG_LOCKS) and arena borrow
# validation (GLSC_DEBUG_ARENA) force-enabled, then runs the FULL suite plus
# the bench gates under them. This is the gcc-toolchain counterpart of the
# clang thread-safety leg: the lock discipline and borrow lifetimes are
# enforced at runtime instead of compile time.
if [[ -n "${CHECK_DEBUG:-}" ]]; then
  DEBUG_DIR="${BUILD_DIR}-debug"
  echo "== debug-checker lane (GLSC_DEBUG_LOCKS=ON GLSC_DEBUG_ARENA=ON) =="
  cmake -B "$DEBUG_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGLSC_DEBUG_LOCKS=ON -DGLSC_DEBUG_ARENA=ON
  cmake --build "$DEBUG_DIR" -j"$JOBS"
  ctest --test-dir "$DEBUG_DIR" --output-on-failure -j"$JOBS"
  "$DEBUG_DIR/bench_e2e_decode" --codec=sz --frames=48 --variables=1 \
      --json="$DEBUG_DIR/BENCH_e2e.json"
  "$DEBUG_DIR/bench_serve" --json="$DEBUG_DIR/BENCH_serve.json"
  for f in "$DEBUG_DIR/BENCH_e2e.json" "$DEBUG_DIR/BENCH_serve.json"; do
    if [[ ! -s "$f" ]]; then
      echo "error: $f missing or empty" >&2
      exit 1
    fi
    if grep -nE '(^|[^A-Za-z_])-?(inf|nan)([^A-Za-z_]|$)' "$f"; then
      echo "error: non-finite value in $f" >&2
      exit 1
    fi
  done
fi

# Opt-in static-analysis lane: the project linter, a -Werror rebuild and
# (when clang is available) thread-safety analysis and clang-tidy, with an
# end-of-run ran/skipped summary. See scripts/lint.sh.
if [[ -n "${CHECK_LINT:-}" ]]; then
  scripts/lint.sh
fi

# Opt-in gcc -fanalyzer lane: interprocedural static analysis of src/ against
# the triaged baseline in tools/fanalyzer_baseline.txt — new findings fail,
# stale baseline entries fail. See scripts/analyze.sh.
if [[ -n "${CHECK_ANALYZE:-}" ]]; then
  scripts/analyze.sh
fi

# Opt-in fuzz smoke: bounded ASan/UBSan run of the fuzz/ harnesses over the
# generated seed corpus. See scripts/fuzz_smoke.sh.
if [[ -n "${CHECK_FUZZ:-}" ]]; then
  scripts/fuzz_smoke.sh
fi

echo "== OK =="
