#!/usr/bin/env bash
# One-command PR gate: configure, build, and run the full ctest suite (native
# + _scalar registrations) with a nonzero exit on any failure.
#
# Usage:
#   scripts/check.sh [-j N] [extra ctest args...]
#
# Environment:
#   BUILD_DIR    build tree (default: build)
#   BUILD_TYPE   CMake build type (default: Release)
#   JOBS         parallelism for build + ctest (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BUILD_TYPE=${BUILD_TYPE:-Release}
JOBS=${JOBS:-$(nproc)}

if [[ "${1:-}" == "-j" ]]; then
  JOBS="$2"
  shift 2
fi

echo "== configure ($BUILD_TYPE) =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE"

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" "$@"

echo "== OK =="
