#!/usr/bin/env bash
# Micro-kernel perf smoke: runs the hot-path benchmarks (GEMM, Conv2d
# forward, attention forward) and emits BENCH_micro.json, then runs the
# end-to-end decode throughput bench (bench_e2e_decode) and emits
# BENCH_e2e.json, so the performance trajectory is tracked across PRs. With
# --codec=NAME it additionally runs the unified-API codec throughput smoke
# (bench_codec_api) for that backend.
#
# Also runs the v4 filter-pipeline bench (bench_filters) over glsc + sz and
# emits BENCH_filters.json with the filtered-vs-raw ratio and fetch MB/s.
#
# Usage:
#   scripts/bench_smoke.sh [--codec=NAME] [extra google-benchmark flags...]
#
# Environment:
#   BUILD_DIR   build tree containing the bench binaries (default: build)
#   OUT         output JSON path (default: BENCH_micro.json)
#   E2E_OUT     e2e decode JSON path (default: BENCH_e2e.json)
#   E2E_CODEC   codec for the e2e decode bench (default: glsc; the first run
#               trains a tiny cached artifact under glsc_artifacts/)
#   GLSC_FORCE_SCALAR=1 / GLSC_ISA=...  pin the dispatch level under test
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_micro.json}
BIN="$BUILD_DIR/bench_micro_kernels"

CODEC=""
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --codec=*) CODEC="${arg#--codec=}" ;;
    --codec) echo "error: use --codec=NAME" >&2; exit 2 ;;
    *) ARGS+=("$arg") ;;
  esac
done

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — configure and build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='BM_Gemm|BM_Conv2dForward|BM_AttentionForward' \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  ${ARGS[@]+"${ARGS[@]}"}

echo "wrote $OUT"

E2E_BIN="$BUILD_DIR/bench_e2e_decode"
E2E_OUT=${E2E_OUT:-BENCH_e2e.json}
E2E_CODEC=${E2E_CODEC:-glsc}
if [[ ! -x "$E2E_BIN" ]]; then
  echo "error: $E2E_BIN not found — rebuild first" >&2
  exit 1
fi
# 128 frames = 8 records so the batched-fetch arm coalesces a full
# max_batch=8 chunk (3 records would cap the batch at 3).
"$E2E_BIN" --codec="$E2E_CODEC" --frames=128 --batch=8 --json="$E2E_OUT"

FILTERS_BIN="$BUILD_DIR/bench_filters"
FILTERS_OUT=${FILTERS_OUT:-BENCH_filters.json}
if [[ ! -x "$FILTERS_BIN" ]]; then
  echo "error: $FILTERS_BIN not found — rebuild first" >&2
  exit 1
fi
# Full trajectory arm: glsc (trains or reuses the cached e2e artifact) + sz,
# so BENCH_filters.json carries the filtered-vs-raw ratio for both.
"$FILTERS_BIN" --codecs=glsc,sz --json="$FILTERS_OUT"
echo "wrote $FILTERS_OUT"

if [[ -n "$CODEC" ]]; then
  CODEC_BIN="$BUILD_DIR/bench_codec_api"
  if [[ ! -x "$CODEC_BIN" ]]; then
    echo "error: $CODEC_BIN not found — rebuild first" >&2
    exit 1
  fi
  "$CODEC_BIN" --codec="$CODEC"
fi
