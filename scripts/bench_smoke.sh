#!/usr/bin/env bash
# Micro-kernel perf smoke: runs the hot-path benchmarks (GEMM, Conv2d
# forward, attention forward) and emits BENCH_micro.json so the performance
# trajectory is tracked across PRs. With --codec=NAME it additionally runs
# the unified-API codec throughput smoke (bench_codec_api) for that backend.
#
# Usage:
#   scripts/bench_smoke.sh [--codec=NAME] [extra google-benchmark flags...]
#
# Environment:
#   BUILD_DIR   build tree containing the bench binaries (default: build)
#   OUT         output JSON path (default: BENCH_micro.json)
#   GLSC_FORCE_SCALAR=1 / GLSC_ISA=...  pin the dispatch level under test
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_micro.json}
BIN="$BUILD_DIR/bench_micro_kernels"

CODEC=""
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --codec=*) CODEC="${arg#--codec=}" ;;
    --codec) echo "error: use --codec=NAME" >&2; exit 2 ;;
    *) ARGS+=("$arg") ;;
  esac
done

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — configure and build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='BM_Gemm|BM_Conv2dForward|BM_AttentionForward' \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  ${ARGS[@]+"${ARGS[@]}"}

echo "wrote $OUT"

if [[ -n "$CODEC" ]]; then
  CODEC_BIN="$BUILD_DIR/bench_codec_api"
  if [[ ! -x "$CODEC_BIN" ]]; then
    echo "error: $CODEC_BIN not found — rebuild first" >&2
    exit 1
  fi
  "$CODEC_BIN" --codec="$CODEC"
fi
