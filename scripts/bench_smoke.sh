#!/usr/bin/env bash
# Micro-kernel perf smoke: runs the hot-path benchmarks (GEMM, Conv2d
# forward, attention forward) and emits BENCH_micro.json so the performance
# trajectory is tracked across PRs.
#
# Usage:
#   scripts/bench_smoke.sh [extra google-benchmark flags...]
#
# Environment:
#   BUILD_DIR   build tree containing bench_micro_kernels (default: build)
#   OUT         output JSON path (default: BENCH_micro.json)
#   GLSC_FORCE_SCALAR=1 / GLSC_ISA=...  pin the dispatch level under test
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_micro.json}
BIN="$BUILD_DIR/bench_micro_kernels"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — configure and build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='BM_Gemm|BM_Conv2dForward|BM_AttentionForward' \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $OUT"
